"""End-to-end integration tests across the data → model → trainer → evaluation pipeline."""

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig, Trainer
from repro.data.synthetic import load_dataset
from repro.evaluation import evaluate_neural
from repro.evaluation.evaluator import collect_predictions
from repro.experiments.common import prepare_data, prepare_data_from_series
from repro.optim import Adam
from repro.tensor import Tensor


@pytest.fixture(scope="module")
def trained_sagdfn():
    """One SAGDFN trained for a few epochs on a small traffic dataset (shared by tests)."""
    data = prepare_data("metr_la_like", num_nodes=16, num_steps=500, batch_size=16, seed=1)
    config = SAGDFNConfig(
        num_nodes=16, input_dim=2, history=data.history, horizon=data.horizon,
        embedding_dim=8, num_significant=6, top_k=5, hidden_size=16, num_heads=2,
        ffn_hidden=8, alpha=1.5, diffusion_steps=2, convergence_iteration=20,
    )
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
    history = trainer.fit(data.train_loader, data.val_loader, epochs=3)
    return model, trainer, data, history


class TestEndToEndTraining:
    def test_training_reduces_loss_substantially(self, trained_sagdfn):
        _, _, _, history = trained_sagdfn
        assert history.train_losses[-1] < 0.7 * history.train_losses[0]

    def test_model_beats_trivial_mean_predictor(self, trained_sagdfn):
        """After a few epochs SAGDFN must beat always-predicting the training mean."""
        model, trainer, data, _ = trained_sagdfn
        metrics = trainer.evaluate(data.test_loader)
        predictions, targets = collect_predictions(model, data.test_loader, data.scaler)
        mean_prediction = np.full_like(targets, data.scaler.mean_)
        mask = targets != 0
        mean_mae = np.abs(mean_prediction - targets)[mask].mean()
        assert metrics["mae"] < mean_mae

    def test_predictions_in_physical_range(self, trained_sagdfn):
        model, _, data, _ = trained_sagdfn
        predictions, _ = collect_predictions(model, data.test_loader, data.scaler)
        assert predictions.min() > -20.0
        assert predictions.max() < 150.0

    def test_per_horizon_error_increases(self, trained_sagdfn):
        """Forecast error should grow (weakly) with the forecasting horizon."""
        model, _, data, _ = trained_sagdfn
        metrics = evaluate_neural(model, data.test_loader, data.scaler, horizons=(3, 12))
        assert metrics[1].mae >= 0.8 * metrics[0].mae

    def test_index_set_converged_and_valid(self, trained_sagdfn):
        model, _, data, _ = trained_sagdfn
        assert model.index_set is not None
        assert len(np.unique(model.index_set)) == model.config.num_significant
        assert model.index_set.max() < data.num_nodes

    def test_state_dict_roundtrip_preserves_predictions(self, trained_sagdfn):
        model, _, data, _ = trained_sagdfn
        batch_x, _ = next(iter(data.test_loader))
        before = model(Tensor(batch_x)).data.copy()
        state = model.state_dict()
        fresh = SAGDFN(model.config)
        fresh.refresh_graph(10**6)  # freeze, then overwrite with saved state
        fresh._index_set = model.index_set.copy()
        fresh.load_state_dict(state)
        fresh.eval()
        after = fresh(Tensor(batch_x)).data
        assert np.allclose(before, after, atol=1e-8)


class TestScalabilityShape:
    def test_forward_cost_scales_roughly_linearly_in_nodes(self):
        """Doubling N with fixed M should far-less-than-quadruple the forward time."""
        import time

        def forward_seconds(num_nodes: int) -> float:
            series, spec = load_dataset("metr_la_like", num_nodes=num_nodes, num_steps=160)
            data = prepare_data_from_series(series, 12, 12, batch_size=8)
            config = SAGDFNConfig(
                num_nodes=num_nodes, input_dim=2, history=12, horizon=12, embedding_dim=8,
                num_significant=8, top_k=6, hidden_size=16, num_heads=2, ffn_hidden=8,
            )
            model = SAGDFN(config)
            model.refresh_graph(0)
            batch_x, _ = next(iter(data.train_loader))
            model(Tensor(batch_x))  # warm-up
            start = time.perf_counter()
            for _ in range(3):
                model(Tensor(batch_x))
            return time.perf_counter() - start

        small, large = forward_seconds(20), forward_seconds(40)
        assert large < small * 3.5  # quadratic scaling would approach 4x

    def test_sagdfn_parameter_count_is_small(self):
        """SAGDFN at paper-like width stays well under the baselines' parameter counts
        reported in Table X (hundreds of thousands to tens of millions)."""
        config = SAGDFNConfig.paper_setting(num_nodes=207)
        model = SAGDFN(config)
        non_embedding = model.num_parameters() - model.node_embeddings.size
        assert non_embedding < 400_000


class TestCarparkPipeline:
    def test_carpark_training_and_metrics(self):
        data = prepare_data("carpark1918_like", num_nodes=12, num_steps=400, batch_size=16, seed=2)
        assert data.history == 24 and data.horizon == 12
        config = SAGDFNConfig(
            num_nodes=12, input_dim=2, history=24, horizon=12, embedding_dim=6,
            num_significant=5, top_k=4, hidden_size=12, num_heads=2, ffn_hidden=6,
        )
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        history = trainer.fit(data.train_loader, epochs=1)
        assert history.train_losses[0] > 0
        metrics = evaluate_neural(model, data.test_loader, data.scaler, horizons=(3, 6, 12))
        assert all(np.isfinite(entry.mae) for entry in metrics)
