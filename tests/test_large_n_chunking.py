"""Tests for the memory-bounded large-N pathway (chunked SNS + tiled attention).

The pathway's core guarantee is *bitwise* equality: for any ``chunk_size`` /
``memory_budget_mb`` setting, the sampled index set and the slim adjacency
must be byte-identical to the unchunked result.  The attention tests shrink
the canonical scoring-tile constant so that multi-tile and multi-block code
paths are exercised on test-sized graphs.
"""

import numpy as np
import pytest

from repro.core import (
    SAGDFN,
    SAGDFNConfig,
    SignificantNeighborsSampling,
    SparseSpatialMultiHeadAttention,
)
from repro.core.gconv import FastGraphConv
from repro.nn.module import Parameter
from repro.serve import ForecastService
from repro.tensor import Tensor, default_dtype, no_grad


def _small_tile(attention: SparseSpatialMultiHeadAttention, m: int, rows: int = 7,
                itemsize: int = 8) -> None:
    """Shrink the canonical tile grid to ``rows`` node rows."""
    attention._tile_bytes = attention.num_heads * m * attention.ffn_hidden * itemsize * rows


class TestChunkedSampling:
    @pytest.mark.parametrize("chunk", [1, 3, 17, 50, 10_000])
    def test_chunked_ranking_bit_identical(self, chunk, rng):
        embeddings = rng.normal(size=(50, 6))
        plain = SignificantNeighborsSampling(50, 12, 9, seed=4)
        chunked = SignificantNeighborsSampling(50, 12, 9, seed=4, chunk_size=chunk)
        assert np.array_equal(plain.sample(embeddings, explore=False),
                              chunked.sample(embeddings, explore=False))

    def test_explore_draws_unaffected_by_chunking(self, rng):
        embeddings = rng.normal(size=(40, 5))
        plain = SignificantNeighborsSampling(40, 10, 6, seed=7)
        chunked = SignificantNeighborsSampling(40, 10, 6, seed=7, chunk_size=9)
        assert np.array_equal(plain.sample(embeddings, explore=True),
                              chunked.sample(embeddings, explore=True))

    def test_memory_budget_derives_block(self, rng):
        sampler = SignificantNeighborsSampling(60, 8, 6, seed=0, memory_budget_mb=0.001)
        assert 1 <= sampler._ranking_block(embedding_dim=4) < 60
        unbounded = SignificantNeighborsSampling(60, 8, 6, seed=0)
        assert unbounded._ranking_block(embedding_dim=4) == 60
        embeddings = rng.normal(size=(60, 4))
        assert np.array_equal(unbounded.sample(embeddings, explore=False),
                              sampler.sample(embeddings, explore=False))

    def test_invalid_chunking_arguments(self):
        with pytest.raises(ValueError):
            SignificantNeighborsSampling(10, 4, 2, chunk_size=0)
        with pytest.raises(ValueError):
            SignificantNeighborsSampling(10, 4, 2, memory_budget_mb=0.0)


class TestTiledAttention:
    def _setup(self, dtype="float64", n=61, d=6, m=9, heads=3, hidden=5, seed=2):
        with default_dtype(dtype):
            rng = np.random.default_rng(0)
            embeddings = Parameter(rng.normal(size=(n, d)), name="embeddings")
            index_set = rng.choice(n, size=m, replace=False)

            def build(**kwargs):
                with default_dtype(dtype):
                    attention = SparseSpatialMultiHeadAttention(
                        d, num_heads=heads, ffn_hidden=hidden, seed=seed, **kwargs
                    )
                _small_tile(attention, m, rows=7, itemsize=embeddings.data.dtype.itemsize)
                return attention

            return embeddings, index_set, build

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("chunk", [1, 5, 7, 13, 28, 61, 1000])
    def test_tiled_forward_bit_identical(self, dtype, chunk):
        embeddings, index_set, build = self._setup(dtype)
        reference = build()(embeddings, index_set).data
        tiled = build(chunk_size=chunk)(embeddings, index_set).data
        assert tiled.dtype == reference.dtype
        assert np.array_equal(reference, tiled)

    def test_memory_budget_bit_identical(self):
        embeddings, index_set, build = self._setup()
        reference = build()(embeddings, index_set).data
        budgeted = build(memory_budget_mb=0.0005)(embeddings, index_set).data
        assert np.array_equal(reference, budgeted)

    def test_block_rounds_up_to_tile_grid(self):
        _, index_set, build = self._setup()
        attention = build(chunk_size=5)
        block = attention._node_block(61, len(index_set), 8)
        assert block is not None and block % 7 == 0  # grid = 7 rows (see _small_tile)
        # a block covering the whole graph collapses to the single-pass mode
        assert build(chunk_size=61)._node_block(61, len(index_set), 8) is None

    def test_tiled_gradients_match(self):
        embeddings, index_set, build = self._setup()
        other = Parameter(embeddings.data.copy(), name="embeddings")
        plain, tiled = build(), build(chunk_size=13)
        plain(embeddings, index_set).sum().backward()
        tiled(other, index_set).sum().backward()
        np.testing.assert_allclose(embeddings.grad, other.grad, atol=1e-12)
        for name in ("head_w1", "head_b1", "head_w2", "head_b2"):
            np.testing.assert_allclose(
                getattr(plain, name).grad, getattr(tiled, name).grad, atol=1e-12
            )
        np.testing.assert_allclose(plain.mixer.weight.grad, tiled.mixer.weight.grad,
                                   atol=1e-12)

    def test_invalid_chunking_arguments(self):
        with pytest.raises(ValueError):
            SparseSpatialMultiHeadAttention(4, chunk_size=0)
        with pytest.raises(ValueError):
            SparseSpatialMultiHeadAttention(4, memory_budget_mb=-1.0)


class TestChunkedGconv:
    def test_blocked_aggregation_matches_full(self, rng):
        x = Tensor(rng.normal(size=(2, 20, 5)))
        adjacency = Tensor(np.abs(rng.random((20, 8))))
        index_set = rng.choice(20, size=8, replace=False)
        plain = FastGraphConv(5, 6, diffusion_steps=3, seed=1)
        chunked = FastGraphConv(5, 6, diffusion_steps=3, seed=1, node_chunk_size=7)
        np.testing.assert_allclose(
            plain(x, adjacency, index_set).data,
            chunked(x, adjacency, index_set).data,
            atol=1e-12,
        )

    def test_blocked_dense_support(self, rng):
        x = Tensor(rng.normal(size=(2, 15, 4)))
        dense = Tensor(np.abs(rng.random((15, 15))))
        plain = FastGraphConv(4, 4, diffusion_steps=2, seed=0)
        chunked = FastGraphConv(4, 4, diffusion_steps=2, seed=0, node_chunk_size=4)
        np.testing.assert_allclose(plain(x, dense).data, chunked(x, dense).data,
                                   atol=1e-12)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            FastGraphConv(4, 4, node_chunk_size=0)


class TestEndToEndChunked:
    def _models(self, **chunk_kwargs):
        base = dict(num_nodes=26, history=3, horizon=3, num_significant=7, top_k=5,
                    hidden_size=8, num_heads=2, ffn_hidden=6, seed=0)
        plain = SAGDFN(SAGDFNConfig(**base))
        chunked = SAGDFN(SAGDFNConfig(**base, **chunk_kwargs))
        for model in (plain, chunked):
            _small_tile(model.attention, 7, rows=5)
        return plain, chunked

    def test_config_threads_knobs(self):
        _, chunked = self._models(chunk_size=9)
        assert chunked.sampler.chunk_size == 9
        assert chunked.attention.chunk_size == 9
        for cell in chunked.forecaster.encoder_cells + chunked.forecaster.decoder_cells:
            assert cell.gates.node_chunk_size == 9

    def test_frozen_graph_bit_identical_predictions_close(self, rng):
        plain, chunked = self._models(chunk_size=9)
        plain.refresh_graph(10**6)
        chunked.refresh_graph(10**6)
        assert np.array_equal(plain.index_set, chunked.index_set)
        with no_grad():
            assert np.array_equal(plain.slim_adjacency().data,
                                  chunked.slim_adjacency().data)
        x = rng.normal(size=(2, 3, 26, 2))
        with no_grad():
            np.testing.assert_allclose(plain(Tensor(x)).data, chunked(Tensor(x)).data,
                                       atol=1e-12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SAGDFNConfig(num_nodes=10, chunk_size=0)
        with pytest.raises(ValueError):
            SAGDFNConfig(num_nodes=10, memory_budget_mb=0)


class TestServiceMemoryKnobs:
    def test_service_override_applies_before_freeze(self, rng):
        # Two independently built but identical models: the service override
        # mutates its model in place, so the unchunked reference needs its own.
        config = dict(num_nodes=20, history=3, horizon=3, num_significant=6,
                      top_k=4, hidden_size=8, num_heads=2, ffn_hidden=6, seed=0)
        plain, model = SAGDFN(SAGDFNConfig(**config)), SAGDFN(SAGDFNConfig(**config))
        plain.refresh_graph(10**6)
        model.refresh_graph(10**6)
        reference = ForecastService(plain)
        overridden = ForecastService(model, chunk_size=5, memory_budget_mb=16.0)
        assert model.sampler.chunk_size == 5
        assert model.attention.chunk_size == 5
        assert model.attention.memory_budget_mb == 16.0
        # the per-request encoder-decoder hot path is blocked too
        for cell in model.forecaster.encoder_cells + model.forecaster.decoder_cells:
            assert cell.gates.node_chunk_size == 5
            assert cell.candidate.node_chunk_size == 5
        # the frozen graph is unchanged by the knob (bit-identity) …
        assert np.array_equal(reference.frozen.adjacency, overridden.frozen.adjacency)
        # … and the blocked per-request forward matches the unchunked one to
        # ~1 ulp (the documented gconv-chunking tolerance)
        window = rng.normal(size=(2, 3, 20, 2))
        np.testing.assert_allclose(reference.predict(window),
                                   overridden.predict(window), atol=1e-12)

    def test_budget_only_override_clears_trained_chunk_size(self):
        """chunk_size wins inside the modules, so a budget-only override must
        clear the checkpoint's chunk_size or the budget would be ignored."""
        config = SAGDFNConfig(num_nodes=20, history=3, horizon=3, num_significant=6,
                              top_k=4, hidden_size=8, num_heads=2, ffn_hidden=6,
                              seed=0, chunk_size=4096)
        model = SAGDFN(config)
        model.refresh_graph(10**6)
        ForecastService(model, memory_budget_mb=16.0)
        assert model.sampler.chunk_size is None
        assert model.sampler.memory_budget_mb == 16.0
        assert model.attention.chunk_size is None
        assert model.attention.memory_budget_mb == 16.0
