"""Masked-metric edge cases, shared across the two metric implementations.

``repro.metrics.forecasting`` (one-shot arrays) and
``repro.evaluation.streaming`` (batch-accumulated sums) must agree on the
awkward cases: all-null targets, disabled masking (``null_value=None``),
NaN null values, and the MAPE epsilon floor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.streaming import StreamingMetrics
from repro.metrics import mae, mape, metrics_dict, rmse
from repro.metrics.forecasting import _mask


def _streaming_metrics(prediction, target, null_value=0.0, epsilon=1e-5):
    stream = StreamingMetrics(null_value=null_value, epsilon=epsilon)
    stream.update(prediction, target)
    return stream.compute()


def _batched(array):
    """Lift a (f, N) array into the (B, f, N) layout StreamingMetrics wants."""
    return np.asarray(array)[None]


class TestAllNullTargets:
    def test_direct_metrics_return_nan(self):
        prediction = np.ones((1, 4, 3))
        target = np.zeros((1, 4, 3))
        for metric in (mae, rmse, mape):
            assert np.isnan(metric(prediction, target, null_value=0.0))

    def test_streaming_returns_nan(self):
        result = _streaming_metrics(np.ones((1, 4, 3)), np.zeros((1, 4, 3)))
        assert all(np.isnan(value) for value in result.values())

    def test_streaming_no_batches_returns_nan(self):
        result = StreamingMetrics().compute()
        assert all(np.isnan(value) for value in result.values())

    def test_nan_null_value_masks_nans(self):
        prediction = np.ones((1, 2, 2))
        target = np.full((1, 2, 2), np.nan)
        assert np.isnan(mae(prediction, target, null_value=float("nan")))
        result = _streaming_metrics(prediction, target, null_value=float("nan"))
        assert np.isnan(result["mae"])


class TestNullValueNone:
    def test_zeros_are_counted(self, rng):
        prediction = rng.normal(size=(2, 3, 4))
        target = np.zeros((2, 3, 4))
        expected = float(np.abs(prediction).mean())
        assert mae(prediction, target, null_value=None) == pytest.approx(expected)
        streamed = _streaming_metrics(prediction, target, null_value=None)
        assert streamed["mae"] == pytest.approx(expected)

    def test_mask_helper_all_true(self):
        target = np.array([0.0, 1.0, np.nan])
        assert _mask(target, None).all()


class TestMapeEpsilonFloor:
    def test_tiny_targets_use_epsilon_denominator(self):
        prediction = np.array([[[2e-6]]])
        target = np.array([[[1e-6]]])
        # |p - t| / max(|t|, eps) with eps = 1e-5 -> 1e-6 / 1e-5 = 0.1
        assert mape(prediction, target, null_value=None) == pytest.approx(0.1)
        streamed = _streaming_metrics(prediction, target, null_value=None)
        assert streamed["mape"] == pytest.approx(0.1)

    def test_custom_epsilon_agrees(self):
        prediction = np.array([[[0.5, 1.0]]])
        target = np.array([[[1e-3, 2.0]]])
        direct = mape(prediction, target, null_value=None, epsilon=1e-2)
        streamed = _streaming_metrics(prediction, target, null_value=None,
                                      epsilon=1e-2)["mape"]
        assert streamed == pytest.approx(direct, rel=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 1000),
    st.sampled_from([0.0, None, float("nan")]),
    st.integers(1, 4),
)
def test_property_streaming_agrees_with_direct(seed, null_value, batches):
    """Batch-accumulated metrics equal the one-shot computation on the
    concatenated arrays, for every masking convention."""
    rng = np.random.default_rng(seed)
    prediction = rng.normal(size=(2 * batches, 3, 5))
    target = rng.normal(size=(2 * batches, 3, 5))
    # sprinkle nulls so masking paths actually trigger
    null = 0.0 if null_value is None or not np.isnan(null_value) else np.nan
    target[rng.random(target.shape) < 0.3] = null

    stream = StreamingMetrics(null_value=null_value)
    for i in range(batches):
        stream.update(prediction[2 * i : 2 * i + 2], target[2 * i : 2 * i + 2])
    streamed = stream.compute()

    direct = metrics_dict(prediction, target, null_value=null_value)
    for key in ("mae", "rmse", "mape"):
        if np.isnan(direct[key]):
            assert np.isnan(streamed[key])
        else:
            assert streamed[key] == pytest.approx(direct[key], rel=1e-9)
