"""Masked-metric edge cases, shared across the two metric implementations.

``repro.metrics.forecasting`` (one-shot arrays) and
``repro.evaluation.streaming`` (batch-accumulated sums) must agree on the
awkward cases: all-null targets, disabled masking (``null_value=None``),
NaN null values, and the MAPE epsilon floor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.streaming import StreamingMetrics
from repro.metrics import mae, mape, metrics_dict, rmse
from repro.metrics.forecasting import _mask


def _streaming_metrics(prediction, target, null_value=0.0, epsilon=1e-5):
    stream = StreamingMetrics(null_value=null_value, epsilon=epsilon)
    stream.update(prediction, target)
    return stream.compute()


def _batched(array):
    """Lift a (f, N) array into the (B, f, N) layout StreamingMetrics wants."""
    return np.asarray(array)[None]


class TestAllNullTargets:
    def test_direct_metrics_return_nan(self):
        prediction = np.ones((1, 4, 3))
        target = np.zeros((1, 4, 3))
        for metric in (mae, rmse, mape):
            assert np.isnan(metric(prediction, target, null_value=0.0))

    def test_streaming_returns_nan(self):
        result = _streaming_metrics(np.ones((1, 4, 3)), np.zeros((1, 4, 3)))
        assert all(np.isnan(value) for value in result.values())

    def test_streaming_no_batches_returns_nan(self):
        result = StreamingMetrics().compute()
        assert all(np.isnan(value) for value in result.values())

    def test_nan_null_value_masks_nans(self):
        prediction = np.ones((1, 2, 2))
        target = np.full((1, 2, 2), np.nan)
        assert np.isnan(mae(prediction, target, null_value=float("nan")))
        result = _streaming_metrics(prediction, target, null_value=float("nan"))
        assert np.isnan(result["mae"])


class TestNullValueNone:
    def test_zeros_are_counted(self, rng):
        prediction = rng.normal(size=(2, 3, 4))
        target = np.zeros((2, 3, 4))
        expected = float(np.abs(prediction).mean())
        assert mae(prediction, target, null_value=None) == pytest.approx(expected)
        streamed = _streaming_metrics(prediction, target, null_value=None)
        assert streamed["mae"] == pytest.approx(expected)

    def test_mask_helper_all_true(self):
        target = np.array([0.0, 1.0, np.nan])
        assert _mask(target, None).all()


class TestMapeEpsilonFloor:
    def test_tiny_targets_use_epsilon_denominator(self):
        prediction = np.array([[[2e-6]]])
        target = np.array([[[1e-6]]])
        # |p - t| / max(|t|, eps) with eps = 1e-5 -> 1e-6 / 1e-5 = 0.1
        assert mape(prediction, target, null_value=None) == pytest.approx(0.1)
        streamed = _streaming_metrics(prediction, target, null_value=None)
        assert streamed["mape"] == pytest.approx(0.1)

    def test_custom_epsilon_agrees(self):
        prediction = np.array([[[0.5, 1.0]]])
        target = np.array([[[1e-3, 2.0]]])
        direct = mape(prediction, target, null_value=None, epsilon=1e-2)
        streamed = _streaming_metrics(prediction, target, null_value=None,
                                      epsilon=1e-2)["mape"]
        assert streamed == pytest.approx(direct, rel=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 1000),
    st.sampled_from([0.0, None, float("nan")]),
    st.integers(1, 4),
)
def test_property_streaming_agrees_with_direct(seed, null_value, batches):
    """Batch-accumulated metrics equal the one-shot computation on the
    concatenated arrays, for every masking convention."""
    rng = np.random.default_rng(seed)
    prediction = rng.normal(size=(2 * batches, 3, 5))
    target = rng.normal(size=(2 * batches, 3, 5))
    # sprinkle nulls so masking paths actually trigger
    null = 0.0 if null_value is None or not np.isnan(null_value) else np.nan
    target[rng.random(target.shape) < 0.3] = null

    stream = StreamingMetrics(null_value=null_value)
    for i in range(batches):
        stream.update(prediction[2 * i : 2 * i + 2], target[2 * i : 2 * i + 2])
    streamed = stream.compute()

    direct = metrics_dict(prediction, target, null_value=null_value)
    for key in ("mae", "rmse", "mape"):
        if np.isnan(direct[key]):
            assert np.isnan(streamed[key])
        else:
            assert streamed[key] == pytest.approx(direct[key], rel=1e-9)


class TestStreamingQuantileEdgeCases:
    """Degenerate-input regressions for the quantile-mode accumulators.

    Each of these previously risked a NaN-by-division RuntimeWarning (or a
    shape crash): a window whose targets are entirely null, a head with a
    single quantile level, and a zero-row batch left over after sample
    dropping.  All must produce clean results — explicit NaNs where there is
    genuinely no data, real numbers everywhere else, and never a warning.
    """

    QUANTILES = (0.1, 0.5, 0.9)

    def _quantile_stream(self, quantiles=QUANTILES):
        return StreamingMetrics(null_value=0.0, quantiles=quantiles)

    def test_all_masked_window_yields_explicit_nans(self):
        stream = self._quantile_stream()
        prediction = np.ones((2, 3, 4, len(self.QUANTILES)))
        target = np.zeros((2, 3, 4, 1))  # every entry is the null sentinel
        with np.errstate(invalid="raise", divide="raise"):
            stream.update(prediction, target)
            metrics = stream.compute()
        assert all(np.isnan(v) for v in metrics.values())
        assert set(metrics) == {
            "mae", "rmse", "mape", "pinball", "interval_width",
            "coverage@0.1", "coverage@0.5", "coverage@0.9",
        }

    def test_all_masked_window_then_data_recovers(self):
        stream = self._quantile_stream()
        stream.update(np.ones((1, 2, 3, 3)), np.zeros((1, 2, 3, 1)))
        rng = np.random.default_rng(0)
        target = np.abs(rng.normal(2.0, 1.0, size=(2, 2, 3, 1))) + 0.5
        stream.update(np.sort(rng.normal(2.0, 1.0, size=(2, 2, 3, 3)), axis=-1), target)
        metrics = stream.compute()
        assert all(np.isfinite(v) for v in metrics.values())

    def test_single_quantile_config(self):
        stream = self._quantile_stream(quantiles=(0.5,))
        rng = np.random.default_rng(1)
        target = np.abs(rng.normal(2.0, 1.0, size=(2, 3, 4, 1))) + 0.5
        prediction = rng.normal(2.0, 1.0, size=(2, 3, 4, 1))
        with np.errstate(invalid="raise", divide="raise"):
            stream.update(prediction, target)
            metrics = stream.compute()
        # one head: the median slice *is* the prediction, the interval is empty
        assert metrics["mae"] == pytest.approx(
            _streaming_metrics(prediction[..., 0], target[..., 0])["mae"]
        )
        assert metrics["interval_width"] == 0.0
        assert metrics["pinball"] == pytest.approx(0.5 * metrics["mae"], rel=1e-12)
        assert 0.0 <= metrics["coverage@0.5"] <= 1.0

    def test_empty_batch_after_drop_contributes_nothing(self):
        stream = self._quantile_stream()
        rng = np.random.default_rng(2)
        target = np.abs(rng.normal(2.0, 1.0, size=(2, 3, 4, 1))) + 0.5
        prediction = np.sort(rng.normal(2.0, 1.0, size=(2, 3, 4, 3)), axis=-1)
        stream.update(prediction, target)
        reference = stream.compute()
        with np.errstate(invalid="raise", divide="raise"):
            stream.update(np.empty((0, 3, 4, 3)), np.empty((0, 3, 4, 1)))
        assert stream.compute() == reference

    def test_only_empty_batches_yield_explicit_nans(self):
        stream = self._quantile_stream()
        with np.errstate(invalid="raise", divide="raise"):
            stream.update(np.empty((0, 3, 4, 3)), np.empty((0, 3, 4, 1)))
            metrics = stream.compute()
        assert all(np.isnan(v) for v in metrics.values())

    def test_point_mode_empty_batch(self):
        stream = StreamingMetrics(null_value=0.0)
        with np.errstate(invalid="raise", divide="raise"):
            stream.update(np.empty((0, 3, 4)), np.empty((0, 3, 4)))
            metrics = stream.compute()
        assert all(np.isnan(v) for v in metrics.values())

    def test_quantile_shape_validation(self):
        stream = self._quantile_stream()
        with pytest.raises(ValueError, match="quantile predictions"):
            stream.update(np.ones((2, 3, 4, 2)), np.ones((2, 3, 4, 1)))
        with pytest.raises(ValueError, match="quantile predictions"):
            stream.update(np.ones((2, 3, 4, 3)), np.ones((2, 3, 4, 2)))

    def test_empty_quantile_tuple_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            StreamingMetrics(quantiles=())
