"""Tests for forecasting metrics, the memory/OOM model, cost profiling and result tables."""

import numpy as np
import pytest

from repro.evaluation import (
    DEFAULT_GPU_MEMORY_GB,
    ResultTable,
    estimate_training_memory_gb,
    evaluate_classical,
    evaluate_neural,
    max_trainable_nodes,
    measure_cost,
    would_oom,
)
from repro.baselines import HistoricalAverage, build_baseline
from repro.evaluation.memory import MEMORY_COEFFICIENTS
from repro.metrics import HorizonMetrics, horizon_metrics, mae, mape, metrics_dict, rmse


class TestMetrics:
    def test_mae_rmse_mape_basic(self):
        prediction = np.array([2.0, 4.0])
        target = np.array([1.0, 2.0])
        assert mae(prediction, target) == pytest.approx(1.5)
        assert rmse(prediction, target) == pytest.approx(np.sqrt(2.5))
        assert mape(prediction, target) == pytest.approx((1.0 + 1.0) / 2)

    def test_masking_excludes_zeros(self):
        prediction = np.array([5.0, 100.0])
        target = np.array([4.0, 0.0])
        assert mae(prediction, target) == pytest.approx(1.0)
        assert rmse(prediction, target) == pytest.approx(1.0)

    def test_all_masked_returns_nan(self):
        assert np.isnan(mae(np.ones(3), np.zeros(3)))

    def test_metrics_dict_keys(self, rng):
        result = metrics_dict(rng.normal(size=(5,)), rng.normal(size=(5,)) + 3)
        assert set(result) == {"mae", "rmse", "mape"}
        assert result["rmse"] >= result["mae"]

    def test_horizon_metrics_shapes_and_selection(self, rng):
        prediction = rng.normal(size=(20, 12, 4, 1)) + 50
        target = prediction + 1.0  # constant error of 1 at every horizon
        metrics = horizon_metrics(prediction, target, horizons=(3, 6, 12))
        assert [entry.horizon for entry in metrics] == [3, 6, 12]
        for entry in metrics:
            assert entry.mae == pytest.approx(1.0)

    def test_horizon_metrics_error_grows_with_horizon(self, rng):
        target = np.abs(rng.normal(size=(10, 12, 3, 1))) + 10
        noise = np.arange(1, 13)[None, :, None, None] * 0.1
        prediction = target + noise
        metrics = horizon_metrics(prediction, target)
        assert metrics[0].mae < metrics[1].mae < metrics[2].mae

    def test_horizon_out_of_range_raises(self, rng):
        data = rng.normal(size=(5, 6, 2, 1))
        with pytest.raises(ValueError):
            horizon_metrics(data, data, horizons=(12,))

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            horizon_metrics(rng.normal(size=(5, 6, 2, 1)), rng.normal(size=(5, 6, 3, 1)))

    def test_horizon_metrics_as_dict(self):
        entry = HorizonMetrics(horizon=3, mae=1.0, rmse=2.0, mape=0.1)
        assert entry.as_dict() == {"mae": 1.0, "rmse": 2.0, "mape": 0.1}


class TestMemoryModel:
    def test_table4_maximum_graph_sizes(self):
        """Calibration targets from Table IV at batch size 64."""
        assert 1600 <= max_trainable_nodes("AGCRN", batch_size=64) <= 1900
        assert 900 <= max_trainable_nodes("GTS", batch_size=64) <= 1100
        assert 150 <= max_trainable_nodes("D2STGNN", batch_size=64) <= 260

    def test_oom_pattern_matches_tables_5_to_7(self):
        """At batch 32 and N≈2000, exactly the paper's eight baselines exceed 32 GB."""
        expected_oom = {"STGCN", "GMAN", "AGCRN", "ASTGCN", "STSGCN", "GTS", "STEP", "D2STGNN"}
        for num_nodes in (1918, 2000):
            oom = {name for name in MEMORY_COEFFICIENTS
                   if would_oom(name, num_nodes, batch_size=32)}
            assert oom == expected_oom

    def test_no_model_ooms_on_metr_la(self):
        """Every model fits METR-LA (207 nodes) at the paper's fallback batch size of 32;
        D2STGNN is the only one that needs the fallback (its Table IV limit is ~200 nodes
        at batch 64)."""
        assert not any(would_oom(name, 207, batch_size=32) for name in MEMORY_COEFFICIENTS)
        fits_at_64 = [name for name in MEMORY_COEFFICIENTS if not would_oom(name, 207, batch_size=64)]
        assert set(MEMORY_COEFFICIENTS) - set(fits_at_64) == {"D2STGNN"}

    def test_sagdfn_memory_far_below_budget_at_2000_nodes(self):
        estimate = estimate_training_memory_gb("SAGDFN", 2000, batch_size=32)
        assert estimate.total_gb < DEFAULT_GPU_MEMORY_GB / 4

    def test_memory_monotone_in_nodes_and_batch(self):
        small = estimate_training_memory_gb("GTS", 500, batch_size=32).total_gb
        large = estimate_training_memory_gb("GTS", 1000, batch_size=32).total_gb
        larger_batch = estimate_training_memory_gb("GTS", 500, batch_size=64).total_gb
        assert large > small
        assert larger_batch >= small

    def test_quadratic_vs_linear_scaling(self):
        """GTS memory grows ~4x when N doubles; SAGDFN grows ~2x."""
        gts_ratio = (estimate_training_memory_gb("GTS", 2000).total_gb
                     / estimate_training_memory_gb("GTS", 1000).total_gb)
        sagdfn_ratio = (estimate_training_memory_gb("SAGDFN", 2000).total_gb
                        / estimate_training_memory_gb("SAGDFN", 1000).total_gb)
        assert gts_ratio > 3.5
        assert sagdfn_ratio < 2.5

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            estimate_training_memory_gb("Nothing", 100)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            estimate_training_memory_gb("GTS", 0)

    def test_zero_footprint_classical_models(self):
        assert max_trainable_nodes("ARIMA", upper=10_000) == 10_000


class TestEvaluators:
    def test_evaluate_neural_horizons(self, tiny_experiment_data):
        data = tiny_experiment_data
        model = build_baseline("LSTM", data.num_nodes, data.input_dim, data.history,
                               data.horizon, hidden_size=8)
        metrics = evaluate_neural(model, data.test_loader, data.scaler, horizons=(3, 6))
        assert [entry.horizon for entry in metrics] == [3, 6]
        assert all(entry.mae > 0 for entry in metrics)

    def test_evaluate_classical_historical_average(self, tiny_traffic_series):
        values = tiny_traffic_series.values[:, :, 0]
        model = HistoricalAverage(history=6, horizon=6, steps_per_day=288)
        model.fit(values[:300])
        metrics = evaluate_classical(model, values[300:], history=6, horizon=6, horizons=(3, 6))
        assert len(metrics) == 2
        assert all(np.isfinite(entry.mae) for entry in metrics)

    def test_measure_cost_report_fields(self, tiny_experiment_data):
        data = tiny_experiment_data
        model = build_baseline("GRU", data.num_nodes, data.input_dim, data.history,
                               data.horizon, hidden_size=8)
        report = measure_cost("GRU", model, data.train_loader, max_batches=2)
        assert report.model == "GRU"
        assert report.num_parameters == model.num_parameters()
        assert report.train_seconds_per_epoch > 0
        assert report.inference_seconds > 0
        assert report.inference_seconds < report.train_seconds_per_epoch


class TestResultTable:
    def _metrics(self, value: float) -> list[HorizonMetrics]:
        return [HorizonMetrics(h, value, value * 1.5, value / 100) for h in (3, 6, 12)]

    def test_add_and_best_model(self):
        table = ResultTable(title="demo")
        table.add("A", self._metrics(2.0))
        table.add("B", self._metrics(1.0))
        table.add("C", None)
        assert table.best_model(3) == "B"
        assert table.oom_models() == ["C"]

    def test_get_entry_and_missing_horizon(self):
        table = ResultTable(title="demo")
        table.add("A", self._metrics(2.0))
        assert table.get("A", 6).mae == pytest.approx(2.0)
        assert table.get("A", 6).rmse == pytest.approx(3.0)
        with pytest.raises(KeyError):
            table.get("A", 9)

    def test_oom_entry_returns_none(self):
        table = ResultTable(title="demo")
        table.add("X", None)
        assert table.get("X", 3) is None

    def test_text_rendering_contains_oom_marker(self):
        table = ResultTable(title="demo table")
        table.add("A", self._metrics(1.234))
        table.add("OOMModel", None)
        text = table.to_text()
        assert "demo table" in text
        assert "×" in text
        assert "1.234" in text

    def test_best_model_without_rows_raises(self):
        table = ResultTable(title="empty")
        table.add("OnlyOOM", None)
        with pytest.raises(ValueError):
            table.best_model(3)
