"""Tests for the individual nn layers: Linear, FFN, Embedding, Dropout, normalisation, activations."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.tensor import Tensor, check_gradients


class TestLinear:
    def test_output_shape_and_batch_dims(self, rng):
        layer = Linear(6, 3, seed=0)
        assert layer(Tensor(rng.normal(size=(4, 6)))).shape == (4, 3)
        assert layer(Tensor(rng.normal(size=(2, 5, 6)))).shape == (2, 5, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 8

    def test_wrong_input_width_raises(self, rng):
        with pytest.raises(ValueError):
            Linear(4, 2)(Tensor(rng.normal(size=(3, 5))))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_for_same_seed(self, rng):
        a, b = Linear(5, 4, seed=3), Linear(5, 4, seed=3)
        assert np.allclose(a.weight.data, b.weight.data)

    def test_gradients(self, rng):
        layer = Linear(3, 2, seed=0)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert check_gradients(
            lambda inp, weight, bias: layer(inp).tanh(), [x, layer.weight, layer.bias]
        )


class TestFeedForward:
    def test_shapes_and_activations(self, rng):
        for activation in ("relu", "tanh", "sigmoid"):
            ffn = FeedForward(4, 8, 2, activation=activation, seed=1)
            assert ffn(Tensor(rng.normal(size=(7, 4)))).shape == (7, 2)

    def test_invalid_activation_raises(self):
        with pytest.raises(ValueError):
            FeedForward(4, 8, 2, activation="swish")

    def test_gradients_flow_to_both_layers(self, rng):
        ffn = FeedForward(3, 5, 2, seed=0)
        x = Tensor(rng.normal(size=(4, 3)))
        ffn(x).sum().backward()
        assert ffn.input_layer.weight.grad is not None
        assert ffn.output_layer.weight.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 4, seed=0)
        assert table(np.array([0, 3, 9])).shape == (3, 4)
        assert table(np.array([[0, 1], [2, 3]])).shape == (2, 2, 4)

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Embedding(5, 2)(np.array([5]))

    def test_gradient_accumulates_on_repeated_indices(self):
        table = Embedding(4, 3, seed=0)
        out = table(np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[1], 2.0)
        assert np.allclose(table.weight.grad[2], 1.0)
        assert np.allclose(table.weight.grad[0], 0.0)

    def test_all_returns_whole_table(self):
        table = Embedding(6, 2, seed=0)
        assert table.all().shape == (6, 2)


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, seed=0)
        layer.eval()
        x = Tensor(rng.normal(size=(10, 10)))
        assert np.allclose(layer(x).data, x.data)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((200, 200)))
        out = layer(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        nonzero = out[out != 0]
        assert np.allclose(nonzero, 2.0)

    def test_zero_probability_is_identity(self, rng):
        layer = Dropout(0.0)
        x = Tensor(rng.normal(size=(5, 5)))
        assert np.allclose(layer(x).data, x.data)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestNormalisation:
    def test_layernorm_zero_mean_unit_variance(self, rng):
        layer = LayerNorm(16)
        out = layer(Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 16)))).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradients(self, rng):
        layer = LayerNorm(6)
        x = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        assert check_gradients(lambda inp: layer(inp), [x], atol=1e-4)

    def test_batchnorm_normalises_training_batch(self, rng):
        layer = BatchNorm1d(4)
        out = layer(Tensor(rng.normal(loc=2.0, scale=5.0, size=(64, 4)))).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_eval_uses_running_statistics(self, rng):
        layer = BatchNorm1d(3, momentum=1.0)
        train_batch = Tensor(rng.normal(loc=4.0, size=(32, 3)))
        layer(train_batch)
        layer.eval()
        out = layer(Tensor(np.full((2, 3), 4.0))).data
        assert np.all(np.abs(out) < 1.0)

    def test_batchnorm_rejects_wrong_shape(self, rng):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(rng.normal(size=(2, 4))))


class TestActivationModules:
    def test_each_activation_shape_preserving(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        for module in (ReLU(), Tanh(), Sigmoid(), LeakyReLU(0.2)):
            assert module(x).shape == (3, 4)

    def test_relu_module_matches_method(self, rng):
        x = Tensor(rng.normal(size=(5,)))
        assert np.allclose(ReLU()(x).data, x.relu().data)
