"""Tests for the loss functions, especially the masked variants used for training."""

import numpy as np
import pytest

from repro.nn import (
    HuberLoss,
    L1Loss,
    MSELoss,
    huber_loss,
    l1_loss,
    mape_loss,
    masked_mae,
    masked_mape,
    masked_mse,
    masked_rmse,
    mse_loss,
)
from repro.tensor import Tensor, check_gradients


class TestPlainLosses:
    def test_l1_matches_numpy(self, rng):
        p, t = rng.normal(size=(4, 5)), rng.normal(size=(4, 5))
        assert l1_loss(Tensor(p), Tensor(t)).item() == pytest.approx(np.abs(p - t).mean())

    def test_mse_matches_numpy(self, rng):
        p, t = rng.normal(size=(4, 5)), rng.normal(size=(4, 5))
        assert mse_loss(Tensor(p), Tensor(t)).item() == pytest.approx(((p - t) ** 2).mean())

    def test_huber_quadratic_inside_delta(self):
        loss = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_outside_delta(self):
        loss = huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(1.0 * 3.0 - 0.5)

    def test_mape_scale_invariance(self, rng):
        t = np.abs(rng.normal(size=(3, 4))) + 1.0
        p = t * 1.1
        assert mape_loss(Tensor(p), Tensor(t)).item() == pytest.approx(0.1, rel=1e-6)

    def test_zero_loss_for_perfect_prediction(self, rng):
        t = rng.normal(size=(4, 4))
        assert l1_loss(Tensor(t.copy()), Tensor(t)).item() == pytest.approx(0.0)
        assert mse_loss(Tensor(t.copy()), Tensor(t)).item() == pytest.approx(0.0)

    def test_loss_modules_match_functions(self, rng):
        p, t = Tensor(rng.normal(size=(3, 3))), Tensor(rng.normal(size=(3, 3)))
        assert L1Loss()(p, t).item() == pytest.approx(l1_loss(p, t).item())
        assert MSELoss()(p, t).item() == pytest.approx(mse_loss(p, t).item())
        assert HuberLoss(0.5)(p, t).item() == pytest.approx(huber_loss(p, t, 0.5).item())


class TestMaskedLosses:
    def test_masked_mae_ignores_null_targets(self):
        target = Tensor(np.array([[10.0, 0.0], [20.0, 0.0]]))
        prediction = Tensor(np.array([[12.0, 99.0], [18.0, 99.0]]))
        # Errors at the zero targets must not contribute.
        assert masked_mae(prediction, target, null_value=0.0).item() == pytest.approx(2.0)

    def test_masked_mae_with_no_mask_equals_plain_mae(self, rng):
        p, t = rng.normal(size=(3, 4)), rng.normal(size=(3, 4)) + 5.0
        assert masked_mae(Tensor(p), Tensor(t), null_value=None).item() == pytest.approx(
            np.abs(p - t).mean()
        )

    def test_masked_nan_null_value(self):
        target = np.array([[1.0, np.nan], [2.0, np.nan]])
        prediction = np.array([[2.0, 50.0], [4.0, 50.0]])
        value = masked_mae(Tensor(prediction), Tensor(np.nan_to_num(target, nan=np.nan)),
                           null_value=float("nan")).item()
        assert value == pytest.approx(1.5)

    def test_masked_mse_and_rmse_consistency(self, rng):
        p = rng.normal(size=(4, 4)) + 3.0
        t = rng.normal(size=(4, 4)) + 3.0
        mse = masked_mse(Tensor(p), Tensor(t), null_value=0.0).item()
        rmse = masked_rmse(Tensor(p), Tensor(t), null_value=0.0).item()
        assert rmse == pytest.approx(np.sqrt(mse))

    def test_masked_mape_excludes_zeros(self):
        target = Tensor(np.array([[100.0, 0.0]]))
        prediction = Tensor(np.array([[110.0, 5.0]]))
        assert masked_mape(prediction, target, null_value=0.0).item() == pytest.approx(0.1)

    def test_all_null_targets_give_zero_loss(self):
        target = Tensor(np.zeros((2, 2)))
        prediction = Tensor(np.ones((2, 2)))
        assert masked_mae(prediction, target, null_value=0.0).item() == pytest.approx(0.0)

    def test_masked_mae_gradients(self, rng):
        target = Tensor(np.abs(rng.normal(size=(3, 3))) + 1.0)
        prediction = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        assert check_gradients(lambda p: masked_mae(p, target), [prediction], atol=1e-4)

    def test_masked_loss_drives_training_signal_only_on_observed(self):
        target = Tensor(np.array([[5.0, 0.0]]))
        prediction = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        masked_mae(prediction, target, null_value=0.0).backward()
        assert prediction.grad[0, 0] != 0.0
        assert prediction.grad[0, 1] == pytest.approx(0.0)
