"""Tests for Module / Parameter registration, state_dict and train/eval modes."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, ModuleList, Sequential, ReLU
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor


class _Composite(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, seed=0)
        self.second = Linear(8, 2, seed=1)
        self.blocks = [Linear(2, 2, seed=2), Linear(2, 2, seed=3)]
        self.lookup = {"extra": Linear(2, 1, seed=4)}
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestParameterTraversal:
    def test_parameters_found_in_attributes_lists_and_dicts(self):
        model = _Composite()
        names = dict(model.named_parameters())
        assert "first.weight" in names
        assert "blocks.0.weight" in names
        assert "lookup.extra.bias" in names
        assert "scale" in names

    def test_parameters_deduplicated_by_identity(self):
        model = _Composite()
        model.alias = model.first  # same module referenced twice
        unique_ids = {id(p) for p in model.parameters()}
        assert len(unique_ids) == len(model.parameters())

    def test_num_parameters_counts_scalars(self):
        linear = Linear(3, 5)
        assert linear.num_parameters() == 3 * 5 + 5

    def test_zero_grad_clears_all(self):
        model = _Composite()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip_restores_values(self):
        model = _Composite()
        state = model.state_dict()
        for parameter in model.parameters():
            parameter.data = parameter.data + 1.0
        model.load_state_dict(state)
        for name, parameter in model.named_parameters():
            assert np.allclose(parameter.data, state[name])

    def test_state_dict_is_a_copy(self):
        model = _Composite()
        state = model.state_dict()
        state["scale"][0] = 123.0
        assert model.scale.data[0] == 1.0

    def test_load_rejects_missing_keys(self):
        model = _Composite()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self):
        model = _Composite()
        state = model.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestModes:
    def test_train_eval_propagates_to_children(self):
        model = Sequential(Linear(2, 2), Dropout(0.5), ReLU())
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_module_list_len_and_indexing(self):
        blocks = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(blocks) == 2
        assert isinstance(blocks[1], Linear)
        blocks.append(Linear(2, 2))
        assert len(blocks) == 3

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(Tensor(np.ones((1, 2))))

    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(3, 4, seed=0), ReLU(), Linear(4, 2, seed=1))
        out = model(Tensor(np.ones((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 3
        assert isinstance(model[0], Linear)
