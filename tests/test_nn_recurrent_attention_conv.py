"""Tests for recurrent cells, attention and temporal convolutions."""

import numpy as np
import pytest

from repro.nn import (
    CausalConv1d,
    Conv1d,
    GRU,
    GRUCell,
    GatedTemporalConv,
    LSTM,
    LSTMCell,
    MultiHeadAttention,
    RNNCell,
    scaled_dot_product_attention,
)
from repro.tensor import Tensor, check_gradients


class TestRecurrentCells:
    def test_rnn_cell_shape(self, rng):
        cell = RNNCell(3, 5)
        h = cell(Tensor(rng.normal(size=(4, 3))), Tensor(np.zeros((4, 5))))
        assert h.shape == (4, 5)

    def test_gru_cell_shape_and_initial_state(self, rng):
        cell = GRUCell(3, 6, seed=0)
        h0 = cell.initial_state(4)
        assert h0.shape == (4, 6)
        h1 = cell(Tensor(rng.normal(size=(4, 3))), h0)
        assert h1.shape == (4, 6)

    def test_gru_zero_update_gate_keeps_state_bounded(self, rng):
        cell = GRUCell(2, 4, seed=0)
        h = cell.initial_state(3)
        for _ in range(50):
            h = cell(Tensor(rng.normal(size=(3, 2))), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)  # state is a convex mix of tanh values

    def test_lstm_cell_shapes(self, rng):
        cell = LSTMCell(3, 5, seed=0)
        h, c = cell.initial_state(2)
        h1, c1 = cell(Tensor(rng.normal(size=(2, 3))), (h, c))
        assert h1.shape == (2, 5) and c1.shape == (2, 5)

    def test_gru_cell_gradients(self, rng):
        cell = GRUCell(2, 3, seed=0)
        x = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert check_gradients(lambda a, b: cell(a, b), [x, h], atol=1e-4)

    def test_gru_layer_unrolls_over_time(self, rng):
        layer = GRU(3, 4, seed=0)
        outputs, final = layer(Tensor(rng.normal(size=(2, 7, 3))))
        assert outputs.shape == (2, 7, 4)
        assert final.shape == (2, 4)
        assert np.allclose(outputs.data[:, -1], final.data)

    def test_lstm_layer_unrolls_over_time(self, rng):
        layer = LSTM(3, 4, seed=0)
        outputs, (h, c) = layer(Tensor(rng.normal(size=(2, 5, 3))))
        assert outputs.shape == (2, 5, 4)
        assert h.shape == (2, 4) and c.shape == (2, 4)

    def test_recurrence_depends_on_history(self, rng):
        """Changing an early input must change the final hidden state."""
        layer = GRU(2, 3, seed=0)
        base = rng.normal(size=(1, 6, 2))
        perturbed = base.copy()
        perturbed[0, 0, 0] += 1.0
        _, h_base = layer(Tensor(base))
        _, h_perturbed = layer(Tensor(perturbed))
        assert not np.allclose(h_base.data, h_perturbed.data)


class TestAttention:
    def test_scaled_dot_product_shapes(self, rng):
        q = Tensor(rng.normal(size=(2, 5, 8)))
        out = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)

    def test_mask_blocks_positions(self, rng):
        q = Tensor(rng.normal(size=(1, 3, 4)))
        value = Tensor(np.stack([np.zeros((3, 4)) + np.array([1.0, 2.0, 3.0])[:, None]]))
        mask = np.zeros((3, 3), dtype=bool)
        mask[:, 0] = True  # only the first key is visible
        out = scaled_dot_product_attention(q, q, value, mask=mask)
        assert np.allclose(out.data, value.data[:, 0:1, :].repeat(3, axis=1), atol=1e-6)

    def test_multi_head_shapes_and_self_attention_default(self, rng):
        attention = MultiHeadAttention(8, 4, seed=0)
        x = Tensor(rng.normal(size=(3, 6, 8)))
        assert attention(x).shape == (3, 6, 8)

    def test_multi_head_rejects_indivisible_dims(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_entmax_attention_is_sparse(self, rng):
        sparse_attention = MultiHeadAttention(8, 2, alpha=2.0, seed=0)
        x = Tensor(rng.normal(size=(2, 10, 8)) * 3.0)
        out = sparse_attention(x)
        assert out.shape == (2, 10, 8)

    def test_attention_gradients(self, rng):
        attention = MultiHeadAttention(4, 2, seed=0)
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        assert check_gradients(lambda inp: attention(inp), [x], atol=1e-4, rtol=1e-3)


class TestConvolutions:
    def test_conv1d_valid_output_length(self, rng):
        conv = Conv1d(3, 5, kernel_size=3, seed=0)
        out = conv(Tensor(rng.normal(size=(2, 3, 10))))
        assert out.shape == (2, 5, 8)

    def test_conv1d_dilation_receptive_field(self):
        conv = Conv1d(1, 1, kernel_size=2, dilation=4)
        assert conv.receptive_field == 5

    def test_conv1d_too_short_input_raises(self, rng):
        conv = Conv1d(2, 2, kernel_size=4)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 2, 3))))

    def test_conv1d_wrong_channels_raises(self, rng):
        conv = Conv1d(2, 2, kernel_size=2)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 3, 8))))

    def test_conv1d_matches_manual_computation(self, rng):
        conv = Conv1d(1, 1, kernel_size=2, bias=False, seed=0)
        x = rng.normal(size=(1, 1, 5))
        out = conv(Tensor(x)).data
        w = conv.weight.data[:, 0, 0]
        expected = np.array([x[0, 0, t] * w[0] + x[0, 0, t + 1] * w[1] for t in range(4)])
        assert np.allclose(out[0, 0], expected)

    def test_causal_conv_preserves_length(self, rng):
        conv = CausalConv1d(2, 3, kernel_size=2, dilation=2, seed=0)
        out = conv(Tensor(rng.normal(size=(2, 2, 12))))
        assert out.shape == (2, 3, 12)

    def test_causal_conv_does_not_see_future(self, rng):
        conv = CausalConv1d(1, 1, kernel_size=2, seed=0)
        base = rng.normal(size=(1, 1, 8))
        perturbed = base.copy()
        perturbed[0, 0, -1] += 10.0  # change only the last step
        out_base = conv(Tensor(base)).data
        out_perturbed = conv(Tensor(perturbed)).data
        assert np.allclose(out_base[0, 0, :-1], out_perturbed[0, 0, :-1])

    def test_gated_temporal_conv_shape_and_range(self, rng):
        conv = GatedTemporalConv(2, 4, kernel_size=2, dilation=2, seed=0)
        out = conv(Tensor(rng.normal(size=(3, 2, 10))))
        assert out.shape == (3, 4, 10)
        assert np.all(np.abs(out.data) <= 1.0 + 1e-9)  # tanh * sigmoid is bounded

    def test_conv_gradients(self, rng):
        conv = Conv1d(2, 3, kernel_size=2, seed=0)
        x = Tensor(rng.normal(size=(2, 2, 6)), requires_grad=True)
        assert check_gradients(lambda inp, weight: conv(inp), [x, conv.weight], atol=1e-4)
