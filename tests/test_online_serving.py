"""Stateful online serving: sessions, incremental scalers, drift hot-swap.

Covers the three cross-layer guarantees of the online stack:

* **Incremental scalers** — ``StandardScaler.partial_fit`` over any chunking
  of a dataset matches a single ``fit`` to <= 1e-10 relative (Chan's
  parallel-variance merge), mask-aware, and refuses to extend pre-v3
  statistics that carry no sample count.
* **Hot-swap bit-parity** — ``swap_index_set`` re-runs the cold-load freeze
  path, so a hot-swapped service answers bit-identically to a cold-started
  service loaded with the same index set, and in-flight requests during a
  swap always complete on exactly one generation.
* **Sessions + drift** — per-client history rings assemble the same window
  the batch data layer would, live metrics merge across sessions, and the
  drift monitor's overlap/cooldown state machine drives the swap.
"""

import json

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.core.sampling import index_set_overlap
from repro.data.scalers import StandardScaler
from repro.evaluation.streaming import StreamingMetrics
from repro.serve import DriftConfig, DriftMonitor, ForecastService, SessionManager
from repro.serve.__main__ import main as serve_main
from repro.serve.online import StreamingSession
from repro.utils import load_bundle, save_bundle
from repro.utils.checkpoint import rehydrate_model, rehydrate_scaler

NODES = 8


def _tiny_config(**overrides):
    defaults = dict(
        num_nodes=NODES, input_dim=1, history=4, horizon=3, embedding_dim=6,
        num_significant=4, top_k=3, hidden_size=8, num_heads=2, ffn_hidden=4,
        seed=0,
    )
    defaults.update(overrides)
    return SAGDFNConfig(**defaults)


def _frozen_model(**overrides):
    model = SAGDFN(_tiny_config(**overrides))
    model.refresh_graph(10**6)
    return model


def _fresh_index_set(num_nodes, size, avoid, seed=11):
    """A valid index set deliberately different from ``avoid``."""
    rng = np.random.default_rng(seed)
    while True:
        candidate = np.sort(rng.choice(num_nodes, size=size, replace=False))
        if not np.array_equal(candidate, np.sort(np.asarray(avoid))):
            return candidate.astype(np.int64)


class _StubTarget:
    """Minimal swap-protocol implementation for drift-monitor unit tests."""

    def __init__(self):
        self.generation = 0
        self.swaps = []

    def swap_index_set(self, index_set):
        self.generation += 1
        self.swaps.append(np.asarray(index_set, dtype=np.int64).copy())
        return self.generation


class TestPartialFit:
    def test_chunked_partial_fit_matches_fit(self, rng):
        values = rng.normal(loc=13.0, scale=4.5, size=(1000, NODES))
        reference = StandardScaler().fit(values)
        incremental = StandardScaler()
        for chunk in np.array_split(values, 13):
            incremental.partial_fit(chunk)
        assert incremental.count_ == reference.count_ == values.size
        assert abs(incremental.mean_ - reference.mean_) <= 1e-10 * abs(reference.mean_)
        assert abs(incremental.std_ - reference.std_) <= 1e-10 * reference.std_

    def test_single_partial_fit_equals_fit_exactly(self, rng):
        values = rng.normal(size=(64, NODES))
        assert StandardScaler().partial_fit(values).mean_ == StandardScaler().fit(values).mean_

    def test_mask_aware_partial_fit_matches_masked_fit(self, rng):
        values = rng.normal(loc=5.0, size=(300, NODES))
        mask = rng.random(values.shape) > 0.3
        reference = StandardScaler().fit(values, sample_mask=mask)
        incremental = StandardScaler()
        for value_chunk, mask_chunk in zip(np.array_split(values, 7),
                                           np.array_split(mask, 7)):
            incremental.partial_fit(value_chunk, sample_mask=mask_chunk)
        assert incremental.count_ == reference.count_ == int(mask.sum())
        assert abs(incremental.mean_ - reference.mean_) <= 1e-10 * abs(reference.mean_)
        assert abs(incremental.std_ - reference.std_) <= 1e-10 * reference.std_

    def test_transform_roundtrip_after_partial_fit(self, rng):
        values = rng.normal(loc=-2.0, scale=3.0, size=(128, NODES))
        scaler = StandardScaler()
        for chunk in np.array_split(values, 4):
            scaler.partial_fit(chunk)
        assert np.allclose(scaler.inverse_transform(scaler.transform(values)), values)

    def test_pre_v3_statistics_cannot_be_extended(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(32, NODES)))
        scaler.count_ = None  # what rehydrating a pre-v3 bundle produces
        with pytest.raises(RuntimeError, match="partial_fit"):
            scaler.partial_fit(rng.normal(size=(4, NODES)))


class TestBundleV3:
    def test_v3_bundle_round_trips_drift_and_scaler_provenance(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(rng.normal(loc=7.0, size=(100, NODES)))
        drift = DriftConfig(overlap_threshold=0.4, min_history=16,
                            check_every=8, cooldown=4, history_window=32)
        path = save_bundle(model, tmp_path / "v3", scaler=scaler, drift=drift)
        bundle = load_bundle(path)
        assert bundle.version == 3
        assert bundle.drift["overlap_threshold"] == 0.4
        assert bundle.drift["check_every"] == 8
        assert bundle.scaler_state["count"] == 100 * NODES
        assert bundle.scaler_state["m2"] == pytest.approx(scaler._m2)
        # DriftConfig round-trips through its dict form
        assert DriftConfig(**bundle.drift) == drift

    def test_drift_record_accepts_plain_dict(self, tmp_path):
        model = _frozen_model()
        path = save_bundle(model, tmp_path / "d", drift={"overlap_threshold": 0.25})
        assert load_bundle(path).drift == {"overlap_threshold": 0.25}

    def test_rehydrated_scaler_supports_partial_fit(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(rng.normal(size=(50, NODES)))
        path = save_bundle(model, tmp_path / "s", scaler=scaler)
        revived = rehydrate_scaler(load_bundle(path))
        assert revived.count_ == scaler.count_
        revived.partial_fit(rng.normal(size=(10, NODES)))
        assert revived.count_ == scaler.count_ + 10 * NODES

    def test_pre_v3_bundle_loads_without_drift_or_provenance(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(rng.normal(size=(50, NODES)))
        path = save_bundle(model, tmp_path / "v2", scaler=scaler,
                           drift=DriftConfig())
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        info = json.loads(str(payload["__bundle__"]))
        info["version"] = 2
        info.pop("drift", None)
        info["scaler"].pop("count", None)
        info["scaler"].pop("m2", None)
        payload["__bundle__"] = np.array(json.dumps(info))
        np.savez(path, **payload)

        bundle = load_bundle(path)
        assert bundle.version == 2
        assert bundle.drift is None
        revived = rehydrate_scaler(bundle)
        assert revived.count_ is None
        assert np.allclose(revived.transform(np.full(NODES, scaler.mean_)), 0.0)
        with pytest.raises(RuntimeError, match="partial_fit"):
            revived.partial_fit(np.zeros((2, NODES)))


class TestIndexSetOverlap:
    def test_identical_sets_overlap_fully(self):
        assert index_set_overlap([1, 3, 5], [5, 3, 1]) == 1.0

    def test_disjoint_sets_overlap_zero(self):
        assert index_set_overlap([0, 1], [2, 3]) == 0.0

    def test_partial_overlap_is_fraction_of_frozen(self):
        assert index_set_overlap([0, 1, 2, 3], [2, 3, 9, 10]) == 0.5

    def test_empty_frozen_set_counts_as_full_overlap(self):
        assert index_set_overlap([], [1, 2]) == 1.0

    def test_duplicates_are_collapsed(self):
        assert index_set_overlap([1, 1, 2], [1, 2, 2]) == 1.0


class TestHotSwap:
    def test_swap_bumps_generation_and_changes_output(self, rng):
        service = ForecastService(_frozen_model())
        window = rng.normal(size=(1, 4, NODES, 1))
        before = service.predict(window)
        fresh = _fresh_index_set(NODES, service.frozen.index_set.size,
                                 service.frozen.index_set)
        assert service.generation == 0
        assert service.swap_index_set(fresh) == 1
        assert service.generation == 1
        assert np.array_equal(service.frozen.index_set, fresh)
        assert not np.array_equal(service.predict(window), before)

    def test_hot_swap_is_bit_identical_to_cold_start(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(np.abs(rng.normal(5.0, 2.0, size=(64, NODES))))
        path = save_bundle(model, tmp_path / "swap", scaler=scaler)
        hot = ForecastService.from_checkpoint(path)
        fresh = _fresh_index_set(NODES, hot.frozen.index_set.size,
                                 hot.frozen.index_set)
        hot.swap_index_set(fresh)

        bundle = load_bundle(path)
        cold_model = rehydrate_model(bundle)
        cold_model._index_set = fresh.copy()
        cold = ForecastService(cold_model, scaler=rehydrate_scaler(bundle))

        window = rng.normal(size=(2, 4, NODES, 1))
        assert np.array_equal(hot.predict(window), cold.predict(window))

    def test_swap_back_restores_original_outputs_bitwise(self, rng):
        service = ForecastService(_frozen_model())
        original = service.frozen.index_set.copy()
        window = rng.normal(size=(1, 4, NODES, 1))
        before = service.predict(window)
        fresh = _fresh_index_set(NODES, original.size, original)
        service.swap_index_set(fresh)
        service.swap_index_set(original)
        assert service.generation == 2
        assert np.array_equal(service.predict(window), before)

    def test_swap_validates_range_duplicates_and_frozen_state(self):
        service = ForecastService(_frozen_model())
        size = service.frozen.index_set.size
        with pytest.raises(ValueError, match=r"lie in \[0"):
            service.swap_index_set(np.arange(NODES, NODES + size))
        with pytest.raises(ValueError, match="duplicate"):
            service.swap_index_set(np.zeros(size, dtype=np.int64))
        unfrozen = ForecastService(_frozen_model(), freeze_graph=False)
        with pytest.raises(RuntimeError, match="frozen-graph"):
            unfrozen.swap_index_set(np.arange(size))

    def test_inflight_requests_during_swap_complete_on_one_generation(self, rng):
        import threading

        service = ForecastService(_frozen_model())
        original = service.frozen.index_set.copy()
        fresh = _fresh_index_set(NODES, original.size, original)
        window = rng.normal(size=(1, 4, NODES, 1))
        ref_original = service.predict(window)
        service.swap_index_set(fresh)
        ref_fresh = service.predict(window)
        service.swap_index_set(original)

        outputs, errors = [], []
        go = threading.Event()

        def client():
            go.wait()
            try:
                for _ in range(30):
                    outputs.append(service.predict(window))
            except Exception as exc:  # noqa: BLE001 - the test asserts none
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        go.set()
        for index_set in (fresh, original, fresh, original):
            service.swap_index_set(index_set)
        for thread in threads:
            thread.join()

        assert not errors
        assert len(outputs) == 120
        for output in outputs:
            assert (np.array_equal(output, ref_original)
                    or np.array_equal(output, ref_fresh))


class TestDriftMonitor:
    def _monitor(self, target=None, frozen=(0, 1, 2, 3), **config):
        defaults = dict(min_history=8, check_every=8, cooldown=0,
                        history_window=16)
        defaults.update(config)
        return DriftMonitor.from_model_config(
            target or _StubTarget(),
            {"num_nodes": NODES, "num_significant": 4, "top_k": 3, "seed": 0},
            np.asarray(frozen, dtype=np.int64),
            config=DriftConfig(**defaults),
        )

    def test_below_min_history_measures_nothing(self, rng):
        monitor = self._monitor(min_history=8)
        monitor.observe(rng.normal(size=(4, NODES)))
        report = monitor.check_now()
        assert report.checked is False
        assert report.overlap is None
        assert report.swapped is False

    def test_forced_threshold_swaps_and_updates_frozen_set(self, rng):
        target = _StubTarget()
        monitor = self._monitor(target, overlap_threshold=1.01)
        monitor.observe(rng.normal(size=(8, NODES)))
        report = monitor.check_now()
        assert report.checked and report.swapped
        assert target.generation == 1
        assert np.array_equal(monitor.frozen_index_set, target.swaps[0])

    def test_zero_threshold_never_swaps(self, rng):
        target = _StubTarget()
        monitor = self._monitor(target, overlap_threshold=0.0)
        monitor.observe(rng.normal(size=(16, NODES)))
        assert monitor.check_now().swapped is False
        assert target.generation == 0

    def test_cooldown_blocks_consecutive_swaps(self, rng):
        target = _StubTarget()
        monitor = self._monitor(target, overlap_threshold=1.01, cooldown=12)
        monitor.observe(rng.normal(size=(12, NODES)))  # >= cooldown: may swap
        assert monitor.check_now().swapped is True
        monitor.observe(rng.normal(size=(4, NODES)))  # inside the cooldown
        report = monitor.check_now()
        assert report.checked is True and report.swapped is False
        monitor.observe(rng.normal(size=(8, NODES)))  # cooldown elapsed
        assert monitor.check_now().swapped is True
        assert target.generation == 2

    def test_reported_overlap_matches_manual_recomputation(self, rng):
        monitor = self._monitor(overlap_threshold=0.0)
        history = rng.normal(size=(16, NODES))
        monitor.observe(history)
        report = monitor.check_now()
        fresh = monitor.sampler.sample(history.T, explore=False)
        assert report.overlap == index_set_overlap([0, 1, 2, 3], fresh)

    def test_maybe_check_honours_cadence(self, rng):
        monitor = self._monitor(check_every=8, min_history=8)
        monitor.observe(rng.normal(size=(7, NODES)))
        assert monitor.maybe_check() is None
        monitor.observe(rng.normal(size=(1, NODES)))
        report = monitor.maybe_check()
        assert report is not None and report.checked
        assert monitor.maybe_check() is None  # counter reset by the check

    def test_observe_rejects_wrong_node_count(self):
        monitor = self._monitor()
        with pytest.raises(ValueError, match="nodes"):
            monitor.observe(np.zeros((2, NODES + 1)))

    def test_background_thread_runs_checks(self, rng):
        import time

        monitor = self._monitor(overlap_threshold=0.0)
        monitor.observe(rng.normal(size=(16, NODES)))
        monitor.start(interval_s=0.01)
        try:
            deadline = time.time() + 5.0
            while monitor.num_checks == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            monitor.stop()
        assert monitor.num_checks >= 1
        with pytest.raises(RuntimeError, match="started"):
            monitor.start()
            monitor.start()
        monitor.stop()


class TestStreamingSession:
    def _stub_session(self, **overrides):
        defaults = dict(history=4, horizon=3, num_nodes=NODES, width=1)
        defaults.update(overrides)
        horizon, nodes = defaults["horizon"], defaults["num_nodes"]
        calls = []

        def predict(window, mask):
            calls.append((window, mask))
            return np.zeros((horizon, nodes, 1))

        session = StreamingSession(predict, **defaults)
        return session, calls

    def test_forecast_before_window_fills_raises(self, rng):
        session, _ = self._stub_session()
        session.push(rng.normal(size=(3, NODES)))
        assert not session.ready
        with pytest.raises(RuntimeError, match="not yet full"):
            session.forecast()

    def test_window_holds_latest_history_rows_oldest_first(self, rng):
        scaler = StandardScaler().fit(rng.normal(loc=10.0, size=(50, NODES)))
        session, _ = self._stub_session(scaler=scaler)
        values = rng.normal(loc=10.0, size=(7, NODES))
        session.push(values)
        assert session.ready and session.rows_seen == 7
        expected = scaler.transform(values[-4:])
        assert np.allclose(session.window()[..., 0], expected)

    def test_push_shape_validation(self, rng):
        session, _ = self._stub_session()
        with pytest.raises(ValueError, match="values must be"):
            session.push(rng.normal(size=(2, NODES + 1)))
        with pytest.raises(ValueError, match="no covariate"):
            session.push(rng.normal(size=(2, NODES)),
                         covariates=rng.normal(size=(2, NODES, 1)))
        with pytest.raises(ValueError, match="mask_input"):
            session.push(rng.normal(size=(2, NODES)), mask=np.ones((2, NODES)))

    def test_covariate_channels_required_and_assembled(self, rng):
        session, _ = self._stub_session(width=2)
        with pytest.raises(ValueError, match="covariate"):
            session.push(rng.normal(size=(2, NODES)))
        covariates = rng.normal(size=(5, NODES, 1))
        session.push(rng.normal(size=(5, NODES)), covariates=covariates)
        assert np.allclose(session.window()[..., 1:], covariates[-4:])

    def test_masked_entries_are_zero_imputed_in_normalised_space(self, rng):
        scaler = StandardScaler().fit(rng.normal(loc=4.0, size=(50, NODES)))
        session, calls = self._stub_session(scaler=scaler, mask_input=True)
        values = rng.normal(loc=4.0, size=(4, NODES))
        mask = np.ones((4, NODES))
        mask[1, 2] = mask[3, 5] = 0
        session.push(values, mask=mask)
        window = session.window()[..., 0]
        assert window[1, 2] == 0.0 and window[3, 5] == 0.0
        observed = mask != 0
        assert np.allclose(window[observed], scaler.transform(values)[observed])
        session.forecast()
        (_, mask_arg), = calls
        assert np.array_equal(mask_arg, mask)

    def test_forecast_matches_direct_service_predict(self, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(np.abs(rng.normal(6.0, 2.0, size=(64, NODES))))
        service = ForecastService(model, scaler=scaler)
        session = StreamingSession(
            service.predict_one, history=4, horizon=3, num_nodes=NODES,
            width=1, scaler=scaler,
        )
        values = np.abs(rng.normal(6.0, 2.0, size=(6, NODES)))
        session.push(values)
        forecast = session.forecast()
        assert np.array_equal(forecast, service.predict_one(session.window()))
        assert forecast.shape == (3, NODES, 1)

    def test_live_metrics_score_completed_forecasts(self, rng):
        session, _ = self._stub_session()
        session.push(np.abs(rng.normal(3.0, 1.0, size=(4, NODES))))
        session.forecast()
        assert np.isnan(session.metrics.compute()["mae"])  # nothing scored yet
        session.push(np.abs(rng.normal(3.0, 1.0, size=(3, NODES))))
        scored = session.metrics.compute()
        assert scored["mae"] > 0  # stub predicts zeros against positive truth
        assert session.num_forecasts == 1


class TestSessionManager:
    @pytest.fixture
    def bundle_path(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(np.abs(rng.normal(5.0, 2.0, size=(128, NODES))))
        drift = DriftConfig(overlap_threshold=0.3, min_history=8,
                            check_every=8, cooldown=0, history_window=16)
        return save_bundle(model, tmp_path / "manager", scaler=scaler, drift=drift)

    def test_from_checkpoint_adopts_bundle_drift_config(self, bundle_path):
        manager = SessionManager.from_checkpoint(bundle_path)
        assert manager.monitor is not None
        assert manager.monitor.config.overlap_threshold == 0.3
        assert manager.monitor.config.check_every == 8
        assert manager.scaler is manager.target.scaler

    def test_push_forecast_roundtrip_and_metrics(self, bundle_path, rng):
        manager = SessionManager.from_checkpoint(bundle_path)
        stream = np.abs(rng.normal(5.0, 2.0, size=(10, NODES)))
        for row in stream[:6]:
            manager.push_observations("client-a", row[None])
        forecast = manager.forecast("client-a")
        assert forecast.shape == (3, NODES, 1)
        for row in stream[6:]:
            manager.push_observations("client-a", row[None])
        metrics = manager.metrics()
        assert metrics["mae"] > 0
        assert len(manager) == 1

    def test_forced_drift_threshold_triggers_hot_swap(self, bundle_path, rng):
        manager = SessionManager.from_checkpoint(
            bundle_path,
            drift={"overlap_threshold": 1.01, "min_history": 8,
                   "check_every": 8, "cooldown": 0, "history_window": 16},
        )
        assert manager.generation == 0
        reports = []
        for row in np.abs(rng.normal(5.0, 2.0, size=(8, NODES))):
            report = manager.push_observations("client", row[None])
            if report is not None:
                reports.append(report)
        assert len(reports) == 1
        assert reports[0].swapped is True
        assert manager.generation == 1

    def test_metrics_merge_across_sessions(self, bundle_path, rng):
        manager = SessionManager.from_checkpoint(bundle_path)
        for client in ("a", "b"):
            for row in np.abs(rng.normal(5.0, 2.0, size=(4, NODES))):
                manager.push_observations(client, row[None])
            manager.forecast(client)
            for row in np.abs(rng.normal(5.0, 2.0, size=(3, NODES))):
                manager.push_observations(client, row[None])
        merged = manager.metrics()
        singles = [manager.session(c).metrics.compute() for c in ("a", "b")]
        assert merged["mae"] == pytest.approx(
            np.average([s["mae"] for s in singles],
                       weights=[1, 1]), rel=1e-9,
        )

    def test_forecast_for_unknown_client_raises(self, bundle_path):
        manager = SessionManager.from_checkpoint(bundle_path)
        with pytest.raises(KeyError, match="unknown session"):
            manager.forecast("nobody")

    def test_update_scaler_requires_v3_provenance(self, bundle_path, rng):
        manager = SessionManager.from_checkpoint(bundle_path, update_scaler=True)
        count_before = manager.scaler.count_
        manager.push_observations("c", np.abs(rng.normal(5.0, 2.0, size=(2, NODES))))
        assert manager.scaler.count_ == count_before + 2 * NODES

        stale = StandardScaler().fit(rng.normal(size=(8, NODES)))
        stale.count_ = None
        with pytest.raises(ValueError, match="provenance"):
            SessionManager(
                ForecastService(_frozen_model(), scaler=stale),
                {"num_nodes": NODES, "history": 4, "horizon": 3,
                 "input_dim": 1, "num_significant": 4, "top_k": 3},
                scaler=stale, update_scaler=True,
            )


class _FakeClock:
    """Deterministic monotonic time source for TTL/LRU tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSessionEviction:
    @pytest.fixture
    def bundle_path(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(
            np.abs(rng.normal(5.0, 2.0, size=(128, NODES)))
        )
        return save_bundle(model, tmp_path / "evict", scaler=scaler)

    def _manager(self, bundle_path, clock, **kwargs):
        service = ForecastService.from_checkpoint(bundle_path)
        bundle = load_bundle(bundle_path)
        return SessionManager(service, bundle.config, scaler=service.scaler,
                              clock=clock, **kwargs)

    def test_lru_eviction_caps_registry(self, bundle_path):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock, max_sessions=2)
        for client in ("a", "b", "c"):
            manager.session(client)
            clock.advance(1.0)
        assert len(manager) == 2
        assert manager.num_evicted == 1
        assert set(manager._sessions) == {"b", "c"}  # "a" was coldest

    def test_touch_refreshes_lru_order(self, bundle_path):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock, max_sessions=2)
        manager.session("a")
        clock.advance(1.0)
        manager.session("b")
        clock.advance(1.0)
        manager.session("a")  # refresh: "b" is now the coldest
        clock.advance(1.0)
        manager.session("c")
        assert set(manager._sessions) == {"a", "c"}

    def test_own_session_never_evicted_under_caller(self, bundle_path):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock, max_sessions=1)
        first = manager.session("a")
        assert manager.session("a") is first  # repeat touch, no self-evict
        manager.session("b")
        assert set(manager._sessions) == {"b"}
        assert manager.num_evicted == 1

    def test_ttl_evicts_idle_sessions(self, bundle_path):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock, session_ttl_s=10.0)
        manager.session("idle")
        clock.advance(5.0)
        manager.session("fresh")
        clock.advance(6.0)  # "idle" is 11 s stale, "fresh" only 6 s
        manager.session("fresh")
        assert set(manager._sessions) == {"fresh"}
        assert manager.num_evicted == 1

    def test_evicted_metrics_survive_in_manager(self, bundle_path, rng):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock, max_sessions=1)
        stream = np.abs(rng.normal(5.0, 2.0, size=(7, NODES)))
        for row in stream[:4]:
            manager.push_observations("scored", row[None])
        manager.forecast("scored")
        for row in stream[4:]:  # horizon rows score the forecast
            manager.push_observations("scored", row[None])
        before = manager.metrics()
        assert before["mae"] > 0
        clock.advance(1.0)
        manager.session("newcomer")  # evicts "scored" at capacity
        assert manager.num_evicted == 1
        assert set(manager._sessions) == {"newcomer"}
        after = manager.metrics()
        assert after["mae"] == pytest.approx(before["mae"], rel=1e-12)
        assert after["rmse"] == pytest.approx(before["rmse"], rel=1e-12)

    def test_unbounded_by_default(self, bundle_path):
        clock = _FakeClock()
        manager = self._manager(bundle_path, clock)
        for index in range(32):
            manager.session(f"client-{index}")
            clock.advance(1000.0)
        assert len(manager) == 32
        assert manager.num_evicted == 0

    def test_bounds_validated(self, bundle_path):
        clock = _FakeClock()
        with pytest.raises(ValueError, match="max_sessions"):
            self._manager(bundle_path, clock, max_sessions=0)
        with pytest.raises(ValueError, match="session_ttl_s"):
            self._manager(bundle_path, clock, session_ttl_s=0.0)

    def test_from_checkpoint_wires_bounds(self, bundle_path):
        manager = SessionManager.from_checkpoint(
            bundle_path, max_sessions=3, session_ttl_s=60.0
        )
        assert manager.max_sessions == 3
        assert manager.session_ttl_s == 60.0


class TestStreamingMetricsMerge:
    def test_merge_equals_single_accumulator(self, rng):
        prediction = rng.normal(size=(6, 3, NODES, 1))
        target = np.abs(rng.normal(size=(6, 3, NODES, 1))) + 0.5
        whole = StreamingMetrics()
        whole.update(prediction, target)
        left, right = StreamingMetrics(), StreamingMetrics()
        left.update(prediction[:2], target[:2])
        right.update(prediction[2:], target[2:])
        merged = left.merge(right)
        assert merged is left
        for key, value in whole.compute().items():
            assert merged.compute()[key] == pytest.approx(value, rel=1e-12)

    def test_merge_into_empty_and_with_empty(self, rng):
        prediction = rng.normal(size=(2, 3, NODES, 1))
        target = np.abs(rng.normal(size=(2, 3, NODES, 1))) + 0.5
        loaded = StreamingMetrics()
        loaded.update(prediction, target)
        empty = StreamingMetrics()
        assert empty.merge(loaded).compute() == loaded.compute()
        assert loaded.merge(StreamingMetrics()).compute() == loaded.compute()

    def test_merge_rejects_mismatched_conventions(self):
        with pytest.raises(ValueError, match="masking or quantiles"):
            StreamingMetrics(null_value=0.0).merge(StreamingMetrics(null_value=None))
        with pytest.raises(ValueError, match="masking or quantiles"):
            StreamingMetrics(quantiles=(0.5,)).merge(StreamingMetrics())

    def test_nan_null_values_compare_equal(self):
        a = StreamingMetrics(null_value=float("nan"))
        b = StreamingMetrics(null_value=float("nan"))
        a.merge(b)  # must not raise


class TestServeCLIErrors:
    """The serve entry point must fail with a one-line error, not a traceback."""

    @pytest.fixture
    def bundle_path(self, tmp_path):
        model = _frozen_model()
        return save_bundle(model, tmp_path / "cli")

    def test_missing_bundle_exits_with_one_line_error(self, tmp_path):
        missing = tmp_path / "nope.npz"
        with pytest.raises(SystemExit) as excinfo:
            serve_main([str(missing)])
        message = str(excinfo.value)
        assert message == f"error: checkpoint bundle not found: {missing}"

    def test_corrupt_bundle_exits_with_one_line_error(self, tmp_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(b"this is not a numpy archive")
        with pytest.raises(SystemExit) as excinfo:
            serve_main([str(corrupt)])
        message = str(excinfo.value)
        assert message.startswith(f"error: cannot load checkpoint bundle {corrupt}")
        assert "\n" not in message

    def test_wrong_input_channel_width_exits_with_one_line_error(
            self, bundle_path, tmp_path, rng):
        wrong = tmp_path / "wrong.npy"
        np.save(wrong, rng.normal(size=(2, 4, NODES, 7)))
        with pytest.raises(SystemExit) as excinfo:
            serve_main([str(bundle_path), "--input", str(wrong)])
        message = str(excinfo.value)
        assert "7 channels" in message and "expects" in message
        assert "\n" not in message

    def test_missing_bundle_subprocess_has_no_traceback(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        result = subprocess.run(
            [sys.executable, "-m", "repro.serve", str(tmp_path / "absent.npz")],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"},
            cwd=repo_root,
        )
        assert result.returncode == 1
        assert "Traceback" not in result.stderr
        assert result.stderr.strip() == (
            f"error: checkpoint bundle not found: {tmp_path / 'absent.npz'}"
        )


class TestOnlineCLI:
    @pytest.fixture
    def bundle_path(self, tmp_path, rng):
        model = _frozen_model()
        scaler = StandardScaler().fit(np.abs(rng.normal(5.0, 2.0, size=(128, NODES))))
        return save_bundle(model, tmp_path / "online-cli", scaler=scaler,
                           drift=DriftConfig(min_history=8, check_every=8,
                                             cooldown=0, history_window=16))

    def test_online_replay_with_forced_drift_swaps(self, bundle_path, tmp_path,
                                                   capsys):
        output = tmp_path / "forecasts.npy"
        code = serve_main([
            str(bundle_path), "--online", "--steps", "32",
            "--drift-threshold", "1.01", "--forecast-every", "4",
            "--output", str(output),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "replayed 32 steps" in printed
        assert "drift check(s)" in printed
        swaps = int(printed.rsplit("drift check(s), ", 1)[1].split(" swap")[0])
        assert swaps >= 1
        forecasts = np.load(output)
        assert forecasts.shape[1:] == (3, NODES, 1)
        assert forecasts.shape[0] >= 1

    def test_online_rejects_no_freeze(self, bundle_path):
        with pytest.raises(SystemExit, match="no-freeze"):
            serve_main([str(bundle_path), "--online", "--no-freeze"])
