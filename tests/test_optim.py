"""Tests for optimisers, gradient clipping and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import (
    Adam,
    CosineAnnealingLR,
    MultiStepLR,
    ReduceLROnPlateau,
    SGD,
    StepLR,
    clip_grad_norm,
    clip_grad_value,
)
from repro.tensor import Tensor


def _quadratic_step(optimizer, parameter):
    """One gradient step on f(w) = ||w||² / 2 (gradient = w)."""
    optimizer.zero_grad()
    parameter.grad = parameter.data.copy()
    optimizer.step()


class TestSGD:
    def test_plain_sgd_matches_closed_form(self):
        w = Parameter(np.array([10.0]))
        optimizer = SGD([w], lr=0.1)
        _quadratic_step(optimizer, w)
        assert w.data[0] == pytest.approx(9.0)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.array([10.0]))
        w_momentum = Parameter(np.array([10.0]))
        plain = SGD([w_plain], lr=0.05)
        momentum = SGD([w_momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain, w_plain)
            _quadratic_step(momentum, w_momentum)
        assert abs(w_momentum.data[0]) < abs(w_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0]))
        optimizer = SGD([w], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        w.grad = np.zeros(1)
        optimizer.step()
        assert w.data[0] < 1.0

    def test_skips_parameters_without_gradient(self):
        w = Parameter(np.array([2.0]))
        SGD([w], lr=0.1).step()
        assert w.data[0] == 2.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([w], lr=0.2)
        for _ in range(200):
            _quadratic_step(optimizer, w)
        assert np.all(np.abs(w.data) < 0.05)

    def test_first_step_size_close_to_lr(self):
        w = Parameter(np.array([1.0]))
        optimizer = Adam([w], lr=0.01)
        _quadratic_step(optimizer, w)
        assert 1.0 - w.data[0] == pytest.approx(0.01, rel=1e-3)

    def test_trains_a_regression_model(self, rng):
        model = Linear(4, 1, seed=0)
        true_weights = rng.normal(size=(4, 1))
        optimizer = Adam(model.parameters(), lr=0.05)
        x = rng.normal(size=(128, 4))
        y = x @ true_weights
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            model.zero_grad()
            prediction = model(Tensor(x))
            loss = ((prediction - Tensor(y)) ** 2).mean()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.01 * first_loss
        assert np.allclose(model.weight.data, true_weights, atol=0.15)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.1, 0.9))


class TestClipping:
    def test_clip_grad_norm_scales_down(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm_before = clip_grad_norm([w], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_no_change_when_small(self):
        w = Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=5.0)
        assert np.allclose(w.grad, [0.1, 0.1])

    def test_clip_grad_norm_empty(self):
        assert clip_grad_norm([Parameter(np.ones(2))], 1.0) == 0.0

    def test_clip_grad_value(self):
        w = Parameter(np.zeros(3))
        w.grad = np.array([-10.0, 0.5, 10.0])
        clip_grad_value([w], 1.0)
        assert np.allclose(w.grad, [-1.0, 0.5, 1.0])


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.ones(1))], lr=lr)

    def test_step_lr_halves_at_step_size(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_multi_step_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.1)
        for _ in range(4):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_cosine_annealing_reaches_minimum(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_annealing_monotone_decreasing(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=8)
        previous = optimizer.lr
        for _ in range(8):
            scheduler.step()
            assert optimizer.lr <= previous + 1e-12
            previous = optimizer.lr

    def test_reduce_on_plateau(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)
        scheduler.step(1.0)  # two bad epochs exceed patience -> halve
        assert optimizer.lr == pytest.approx(0.5)

    def test_reduce_on_plateau_resets_on_improvement(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
        scheduler.step(1.0)
        scheduler.step(0.5)
        scheduler.step(0.4)
        assert optimizer.lr == pytest.approx(1.0)
