"""Tests for optimisers, gradient clipping and learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.nn.module import Parameter
from repro.optim import (
    Adam,
    CosineAnnealingLR,
    MultiStepLR,
    ReduceLROnPlateau,
    SGD,
    StepLR,
    clip_grad_norm,
    clip_grad_value,
)
from repro.tensor import Tensor


def _quadratic_step(optimizer, parameter):
    """One gradient step on f(w) = ||w||² / 2 (gradient = w)."""
    optimizer.zero_grad()
    parameter.grad = parameter.data.copy()
    optimizer.step()


class TestSGD:
    def test_plain_sgd_matches_closed_form(self):
        w = Parameter(np.array([10.0]))
        optimizer = SGD([w], lr=0.1)
        _quadratic_step(optimizer, w)
        assert w.data[0] == pytest.approx(9.0)

    def test_momentum_accelerates(self):
        w_plain = Parameter(np.array([10.0]))
        w_momentum = Parameter(np.array([10.0]))
        plain = SGD([w_plain], lr=0.05)
        momentum = SGD([w_momentum], lr=0.05, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain, w_plain)
            _quadratic_step(momentum, w_momentum)
        assert abs(w_momentum.data[0]) < abs(w_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.array([1.0]))
        optimizer = SGD([w], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        w.grad = np.zeros(1)
        optimizer.step()
        assert w.data[0] < 1.0

    def test_skips_parameters_without_gradient(self):
        w = Parameter(np.array([2.0]))
        SGD([w], lr=0.1).step()
        assert w.data[0] == 2.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([w], lr=0.2)
        for _ in range(200):
            _quadratic_step(optimizer, w)
        assert np.all(np.abs(w.data) < 0.05)

    def test_first_step_size_close_to_lr(self):
        w = Parameter(np.array([1.0]))
        optimizer = Adam([w], lr=0.01)
        _quadratic_step(optimizer, w)
        assert 1.0 - w.data[0] == pytest.approx(0.01, rel=1e-3)

    def test_trains_a_regression_model(self, rng):
        model = Linear(4, 1, seed=0)
        true_weights = rng.normal(size=(4, 1))
        optimizer = Adam(model.parameters(), lr=0.05)
        x = rng.normal(size=(128, 4))
        y = x @ true_weights
        first_loss = None
        for _ in range(150):
            optimizer.zero_grad()
            model.zero_grad()
            prediction = model(Tensor(x))
            loss = ((prediction - Tensor(y)) ** 2).mean()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < 0.01 * first_loss
        assert np.allclose(model.weight.data, true_weights, atol=0.15)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.1, 0.9))


class TestClipping:
    def test_clip_grad_norm_scales_down(self):
        w = Parameter(np.zeros(4))
        w.grad = np.full(4, 10.0)
        norm_before = clip_grad_norm([w], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_no_change_when_small(self):
        w = Parameter(np.zeros(2))
        w.grad = np.array([0.1, 0.1])
        clip_grad_norm([w], max_norm=5.0)
        assert np.allclose(w.grad, [0.1, 0.1])

    def test_clip_grad_norm_empty(self):
        assert clip_grad_norm([Parameter(np.ones(2))], 1.0) == 0.0

    def test_clip_grad_value(self):
        w = Parameter(np.zeros(3))
        w.grad = np.array([-10.0, 0.5, 10.0])
        clip_grad_value([w], 1.0)
        assert np.allclose(w.grad, [-1.0, 0.5, 1.0])


class TestSchedulers:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.ones(1))], lr=lr)

    def test_step_lr_halves_at_step_size(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_multi_step_lr(self):
        optimizer = self._optimizer()
        scheduler = MultiStepLR(optimizer, milestones=[2, 4], gamma=0.1)
        for _ in range(4):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.01)

    def test_cosine_annealing_reaches_minimum(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=10, eta_min=0.0)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_cosine_annealing_monotone_decreasing(self):
        optimizer = self._optimizer()
        scheduler = CosineAnnealingLR(optimizer, t_max=8)
        previous = optimizer.lr
        for _ in range(8):
            scheduler.step()
            assert optimizer.lr <= previous + 1e-12
            previous = optimizer.lr

    def test_reduce_on_plateau(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=1)
        scheduler.step(1.0)
        scheduler.step(1.0)
        scheduler.step(1.0)  # two bad epochs exceed patience -> halve
        assert optimizer.lr == pytest.approx(0.5)

    def test_reduce_on_plateau_resets_on_improvement(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
        scheduler.step(1.0)
        scheduler.step(0.5)
        scheduler.step(0.4)
        assert optimizer.lr == pytest.approx(1.0)


class TestSchedulerChaining:
    """Schedulers must scale the *current* learning rate, not recompute the
    absolute value from the base_lr captured at construction — recomputing
    silently reverted any change made by ReduceLROnPlateau or the user."""

    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.ones(1))], lr=lr)

    def test_step_lr_preserves_external_change(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()              # epoch 1, no boundary
        optimizer.lr = 0.1            # plateau/user intervention
        scheduler.step()              # epoch 2: halve the *current* lr
        assert optimizer.lr == pytest.approx(0.05)
        scheduler.step()              # epoch 3, no boundary: must not revert
        assert optimizer.lr == pytest.approx(0.05)

    def test_multi_step_lr_preserves_external_change(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = MultiStepLR(optimizer, milestones=[3], gamma=0.1)
        scheduler.step()
        optimizer.lr = 0.4
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.4)  # not a milestone: untouched
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.04)

    def test_cosine_scales_external_change(self):
        optimizer = self._optimizer(lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=10)
        scheduler.step()
        before = optimizer.lr
        optimizer.lr = before / 2.0   # external halving must survive
        scheduler.step()
        halved = optimizer.lr
        reference = self._optimizer(lr=1.0)
        ref_scheduler = CosineAnnealingLR(reference, t_max=10)
        ref_scheduler.step()
        ref_scheduler.step()
        assert halved == pytest.approx(reference.lr / 2.0)

    def test_cosine_matches_closed_form_without_interference(self):
        optimizer = self._optimizer(lr=2.0)
        scheduler = CosineAnnealingLR(optimizer, t_max=7, eta_min=0.2)
        import math
        for epoch in range(1, 8):
            scheduler.step()
            closed = 0.2 + 0.5 * (2.0 - 0.2) * (1.0 + math.cos(math.pi * epoch / 7))
            assert optimizer.lr == pytest.approx(closed, rel=1e-12)
        scheduler.step()  # past t_max: stays at eta_min
        assert optimizer.lr == pytest.approx(0.2)

    def test_plateau_then_step_lr_compose(self):
        optimizer = self._optimizer(lr=1.0)
        step = StepLR(optimizer, step_size=2, gamma=0.5)
        plateau = ReduceLROnPlateau(optimizer, factor=0.1, patience=0)
        plateau.step(1.0)
        plateau.step(2.0)             # worse -> lr * 0.1
        assert optimizer.lr == pytest.approx(0.1)
        step.step()                   # epoch 1: no boundary, keeps 0.1
        assert optimizer.lr == pytest.approx(0.1)
        step.step()                   # epoch 2: halves the reduced lr
        assert optimizer.lr == pytest.approx(0.05)


class TestSchedulerState:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.ones(1))], lr=lr)

    @pytest.mark.parametrize("factory", [
        lambda opt: StepLR(opt, step_size=3, gamma=0.5),
        lambda opt: MultiStepLR(opt, milestones=[2, 5], gamma=0.1),
        lambda opt: CosineAnnealingLR(opt, t_max=9, eta_min=0.01),
    ])
    def test_resume_continues_schedule(self, factory):
        continuous_opt = self._optimizer()
        continuous = factory(continuous_opt)
        trajectory = []
        for _ in range(8):
            continuous.step()
            trajectory.append(continuous_opt.lr)

        interrupted_opt = self._optimizer()
        interrupted = factory(interrupted_opt)
        for _ in range(4):
            interrupted.step()
        state = interrupted.state_dict()

        resumed_opt = self._optimizer(lr=123.0)  # wrong lr: load must fix it
        resumed = factory(resumed_opt)
        resumed.load_state_dict(state)
        assert resumed_opt.lr == pytest.approx(trajectory[3])
        assert resumed.epoch == 4
        resumed_trajectory = []
        for _ in range(4):
            resumed.step()
            resumed_trajectory.append(resumed_opt.lr)
        assert resumed_trajectory == pytest.approx(trajectory[4:])

    def test_plateau_state_round_trip(self):
        optimizer = self._optimizer()
        scheduler = ReduceLROnPlateau(optimizer, factor=0.5, patience=2)
        scheduler.step(1.0)
        scheduler.step(2.0)
        state = scheduler.state_dict()
        assert state["best"] == pytest.approx(1.0)
        assert state["bad_epochs"] == 1

        fresh = ReduceLROnPlateau(self._optimizer(), factor=0.5, patience=2)
        fresh.load_state_dict(state)
        fresh.step(3.0)               # second bad epoch stays within patience
        assert fresh.optimizer.lr == pytest.approx(1.0)
        fresh.step(3.0)               # third exceeds patience -> halve
        assert fresh.optimizer.lr == pytest.approx(0.5)

    def test_unknown_state_key_raises(self):
        scheduler = StepLR(self._optimizer(), step_size=2)
        with pytest.raises(KeyError):
            scheduler.load_state_dict({"lr": 1.0, "bogus": 3})

    def test_mismatched_state_leaves_scheduler_untouched(self):
        source = CosineAnnealingLR(self._optimizer(lr=0.5), t_max=4)
        source.step()
        state = source.state_dict()
        target = StepLR(self._optimizer(lr=1.0), step_size=2)
        with pytest.raises(KeyError):
            target.load_state_dict(state)  # t_max/eta_min are foreign keys
        assert target.optimizer.lr == pytest.approx(1.0)  # nothing half-applied
        assert target.epoch == 0

    def test_bundle_round_trip(self, tmp_path):
        from repro.nn import Linear
        from repro.utils.checkpoint import load_bundle, save_bundle

        model = Linear(3, 2, seed=0)
        optimizer = SGD(model.parameters(), lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        for _ in range(3):
            scheduler.step()
        path = save_bundle(model, tmp_path / "bundle", scheduler=scheduler)
        bundle = load_bundle(path)
        assert bundle.scheduler_state["type"] == "StepLR"

        resumed = StepLR(SGD(model.parameters(), lr=99.0), step_size=2, gamma=0.5)
        resumed.load_state_dict(bundle.scheduler_state["state"])
        assert resumed.epoch == 3
        assert resumed.optimizer.lr == pytest.approx(0.5)
        resumed.step()
        assert resumed.optimizer.lr == pytest.approx(0.25)

    def test_bundle_without_scheduler_is_none(self, tmp_path):
        from repro.nn import Linear
        from repro.utils.checkpoint import load_bundle, save_bundle

        path = save_bundle(Linear(2, 1, seed=0), tmp_path / "plain")
        assert load_bundle(path).scheduler_state is None

    def test_bundle_handles_numpy_scalar_state(self, tmp_path):
        """A best-metric fed from float32 tensor data lands in the scheduler
        state as a numpy scalar; bundling must not crash on it."""
        from repro.nn import Linear
        from repro.utils.checkpoint import load_bundle, save_bundle

        model = Linear(2, 1, seed=0)
        scheduler = ReduceLROnPlateau(SGD(model.parameters(), lr=1.0))
        scheduler.step(np.float32(0.75))
        path = save_bundle(model, tmp_path / "np_state", scheduler=scheduler)
        state = load_bundle(path).scheduler_state["state"]
        assert state["best"] == pytest.approx(0.75)
