"""Schema tests for the ``benchmarks/perf`` micro-benchmark runner."""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def run_perf():
    spec = importlib.util.spec_from_file_location(
        "run_perf", REPO_ROOT / "benchmarks" / "perf" / "run_perf.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tiny_report(run_perf, tmp_path_factory):
    output = tmp_path_factory.mktemp("perf") / "bench.json"
    report = run_perf.main(
        [
            "--sizes", "24",
            "--m", "6",
            "--heads", "2",
            "--embedding-dim", "4",
            "--ffn-hidden", "4",
            "--hidden", "4",
            "--repeats", "1",
            "--scaling-sizes", "24", "48",
            "--scaling-embedding-dim", "4",
            "--scaling-budget-mb", "8",
            "--cluster-workers", "1", "2",
            "--cluster-requests", "8",
            "--online-steps", "16",
            "--output", str(output),
        ]
    )
    return report, output


class TestPerfRunner:
    def test_report_passes_schema_validation(self, run_perf, tiny_report):
        report, _ = tiny_report
        run_perf.validate_schema(report)

    def test_written_json_round_trips(self, tiny_report):
        report, output = tiny_report
        on_disk = json.loads(output.read_text())
        assert on_disk["benchmark"] == report["benchmark"] == "attention"
        assert on_disk["schema_version"] == report["schema_version"]
        assert len(on_disk["results"]) == len(report["results"])

    def test_both_dtypes_and_speedups_present(self, tiny_report):
        report, _ = tiny_report
        dtypes = {entry["dtype"] for entry in report["results"]}
        assert dtypes == {"float32", "float64"}
        for entry in report["results"]:
            assert entry["attention_vectorized_ms"] > 0
            assert entry["attention_loop_ms"] > 0
            assert entry["attention_speedup"] > 0
            assert entry["gconv_ms"] > 0
            assert entry["train_step_ms"] > 0
        assert "24" in report["attention_speedup_vs_seed"]

    def test_serve_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        serve = report["serve"]
        assert serve["frozen_graph"] is True
        batch_sizes = [entry["batch_size"] for entry in serve["results"]]
        assert batch_sizes == [1, 8, 32]
        for entry in serve["results"]:
            assert entry["latency_p50_ms"] > 0
            assert entry["latency_p95_ms"] >= entry["latency_p50_ms"]
            assert entry["throughput_rps"] > 0

    def test_scaling_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        scaling = report["scaling"]
        assert scaling["memory_budget_mb"] == 8.0
        node_counts = [entry["num_nodes"] for entry in scaling["results"]]
        assert node_counts == [24, 48]
        for entry in scaling["results"]:
            assert entry["wall_ms"] > 0
            assert entry["peak_mem_mb"] > 0
            assert entry["peak_rss_mb"] > 0
            # at test scale the unchunked path always runs: bit-identity holds
            assert entry["chunked_equals_unchunked"] is True
            assert entry["unchunked_peak_mem_mb"] > 0

    def test_scaling_only_mode(self, run_perf, tmp_path):
        output = tmp_path / "scaling.json"
        report = run_perf.main(
            [
                "--scaling-only",
                "--scaling-sizes", "24",
                "--scaling-embedding-dim", "4",
                "--m", "6",
                "--heads", "2",
                "--ffn-hidden", "4",
                "--repeats", "1",
                "--assert-scaling-peak-mb", "512",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-scaling"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the scaling section is written
        run_perf.validate_scaling(on_disk["scaling"])

    def test_scaling_peak_assertion_fails_when_exceeded(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                [
                    "--scaling-only",
                    "--scaling-sizes", "24",
                    "--scaling-embedding-dim", "4",
                    "--m", "6",
                    "--heads", "2",
                    "--ffn-hidden", "4",
                    "--repeats", "1",
                    "--assert-scaling-peak-mb", "0.0001",
                    "--output", str(tmp_path / "scaling.json"),
                ]
            )

    def test_schema_validator_rejects_missing_keys(self, run_perf):
        with pytest.raises(ValueError):
            run_perf.validate_schema({"benchmark": "attention"})
        with pytest.raises(ValueError):
            run_perf.validate_schema(
                {
                    "benchmark": "attention",
                    "schema_version": 1,
                    "config": {},
                    "attention_speedup_vs_seed": {},
                    "results": [],
                }
            )
        with pytest.raises(ValueError):
            run_perf.validate_schema(
                {
                    "benchmark": "attention",
                    "schema_version": 3,
                    "config": {},
                    "attention_speedup_vs_seed": {},
                    "serve": {"results": []},
                    "scaling": {"memory_budget_mb": 1.0, "results": [{}]},
                    "results": [{"num_nodes": 1, "num_significant": 1, "dtype": "float32",
                                 "attention_vectorized_ms": 1.0, "gconv_ms": 1.0}],
                }
            )

    def test_scaling_validator_rejects_divergence(self, run_perf):
        entry = {
            "num_nodes": 10, "num_significant": 4, "dtype": "float32",
            "wall_ms": 1.0, "peak_mem_mb": 1.0, "peak_rss_mb": 1.0,
            "within_budget": True, "chunked_equals_unchunked": False,
        }
        with pytest.raises(ValueError, match="diverged"):
            run_perf.validate_scaling({"memory_budget_mb": 1.0, "results": [entry]})

    def test_checked_in_bench_json_is_valid(self, run_perf):
        """The committed BENCH_attention.json must satisfy the current schema."""
        path = REPO_ROOT / "BENCH_attention.json"
        report = json.loads(path.read_text())
        run_perf.validate_schema(report)
        node_counts = {entry["num_nodes"] for entry in report["results"]}
        assert {200, 2000} <= node_counts


class TestRecurrenceSection:
    def test_recurrence_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        recurrence = report["recurrence"]
        assert report["schema_version"] == 8
        assert recurrence["history"] > 0 and recurrence["horizon"] > 0
        (entry,) = recurrence["results"]
        assert entry["num_nodes"] == 24
        assert entry["steps"] == recurrence["history"] + recurrence["horizon"]
        for key in ("reference_ms", "fused_ms", "kernel_ms",
                    "train_fused_ms", "train_reference_ms"):
            assert entry[key] > 0, key
        for key in ("fused_speedup", "kernel_speedup", "train_speedup"):
            assert entry[key] > 0, key
        # the fast paths must sit inside the documented equivalence envelope
        assert entry["max_rel_diff_fused"] <= 5e-5   # float32 bench dtype
        assert entry["max_rel_diff_kernel"] <= 5e-5
        batch_sizes = [e["batch_size"] for e in recurrence["serve_throughput"]]
        assert batch_sizes == [1, 8, 32]
        assert recurrence["throughput_batch8_over_batch1"] > 0

    def test_recurrence_only_mode(self, run_perf, tmp_path):
        output = tmp_path / "recurrence.json"
        report = run_perf.main(
            [
                "--recurrence-only",
                "--sizes", "24",
                "--recurrence-sizes", "24",
                "--m", "6",
                "--heads", "2",
                "--embedding-dim", "4",
                "--ffn-hidden", "4",
                "--hidden", "4",
                "--repeats", "1",
                "--assert-recurrence-speedup", "0.01",
                "--assert-serve-batch-growth", "0.01",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-recurrence"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the recurrence section is written
        run_perf.validate_recurrence(on_disk["recurrence"])

    def test_recurrence_speedup_assertion_fails_when_below(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                [
                    "--recurrence-only",
                    "--sizes", "24",
                    "--recurrence-sizes", "24",
                    "--m", "6",
                    "--heads", "2",
                    "--embedding-dim", "4",
                    "--ffn-hidden", "4",
                    "--hidden", "4",
                    "--repeats", "1",
                    "--assert-recurrence-speedup", "1000",
                    "--output", str(tmp_path / "r.json"),
                ]
            )

    def test_scaling_and_recurrence_only_are_exclusive(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--scaling-only", "--recurrence-only",
                 "--output", str(tmp_path / "x.json")]
            )
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--scaling-only", "--backend-only",
                 "--output", str(tmp_path / "x.json")]
            )


class TestBackendsSection:
    def test_backends_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        backends = report["backends"]
        assert backends["num_nodes"] == 24  # largest benched N
        entries = {entry["backend"]: entry for entry in backends["results"]}
        assert set(entries) == {"numpy", "numba"}
        numpy_entry = entries["numpy"]
        assert numpy_entry["available"] is True
        for key in ("pair_scores_ms", "diffusion_aggregate_ms",
                    "fused_gru_gates_ms"):
            assert numpy_entry[key] > 0, key
        numba_entry = entries["numba"]
        if numba_entry["available"]:
            # parity of the jitted scoring against the numpy reference
            assert numba_entry["pair_scores_max_rel_diff"] <= 1e-10
            assert backends["attention_speedup_numba_over_numpy"] > 0
        else:
            assert "numba" in numba_entry["reason"]
            assert backends["attention_speedup_numba_over_numpy"] is None

    def test_backend_only_mode(self, run_perf, tmp_path):
        output = tmp_path / "backends.json"
        report = run_perf.main(
            [
                "--backend-only",
                "--sizes", "24",
                "--m", "6",
                "--heads", "2",
                "--embedding-dim", "4",
                "--ffn-hidden", "4",
                "--hidden", "4",
                "--repeats", "1",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-backends"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the backends section is written
        run_perf.validate_backends(on_disk["backends"])

    def test_backend_speedup_assertion_fails(self, run_perf, tmp_path):
        """Absurd threshold: fails whether numba is installed or not."""
        with pytest.raises(SystemExit):
            run_perf.main(
                [
                    "--backend-only",
                    "--sizes", "24",
                    "--m", "6",
                    "--heads", "2",
                    "--embedding-dim", "4",
                    "--ffn-hidden", "4",
                    "--hidden", "4",
                    "--repeats", "1",
                    "--assert-backend-speedup", "1e9",
                    "--output", str(tmp_path / "b.json"),
                ]
            )

    def test_unknown_backend_flag_fails_fast(self, run_perf, tmp_path):
        with pytest.raises(ValueError, match="unknown backend 'nope'"):
            run_perf.main(
                ["--backend", "nope", "--backend-only", "--sizes", "24",
                 "--output", str(tmp_path / "b.json")]
            )

    def test_cluster_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        cluster = report["cluster"]
        assert cluster["num_nodes"] == 24
        worker_counts = [entry["workers"] for entry in cluster["results"]]
        assert worker_counts == [1, 2]
        for entry in cluster["results"]:
            assert entry["throughput_rps"] > 0
            assert entry["latency_p95_ms"] >= entry["latency_p50_ms"] > 0
            assert entry["scaling_efficiency"] > 0
            assert entry["num_batches"] >= 1
        assert cluster["results"][0]["scaling_efficiency"] == pytest.approx(1.0)
        assert cluster["throughput_workers2_over_workers1"] > 0

    def test_cluster_only_mode(self, run_perf, tmp_path):
        output = tmp_path / "cluster.json"
        report = run_perf.main(
            [
                "--cluster-only",
                "--sizes", "24",
                "--m", "6",
                "--heads", "2",
                "--embedding-dim", "4",
                "--ffn-hidden", "4",
                "--hidden", "4",
                "--repeats", "1",
                "--cluster-workers", "1", "2",
                "--cluster-requests", "8",
                "--assert-cluster-efficiency", "0.01",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-cluster"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the cluster section is written
        run_perf.validate_cluster(on_disk["cluster"])

    def test_cluster_efficiency_assertion_fails_when_below(self, run_perf,
                                                           tmp_path):
        """Superlinear threshold: no host can satisfy efficiency >= 100."""
        with pytest.raises(SystemExit, match="efficiency"):
            run_perf.main(
                [
                    "--cluster-only",
                    "--sizes", "24",
                    "--m", "6",
                    "--heads", "2",
                    "--embedding-dim", "4",
                    "--ffn-hidden", "4",
                    "--hidden", "4",
                    "--repeats", "1",
                    "--cluster-workers", "1", "2",
                    "--cluster-requests", "8",
                    "--assert-cluster-efficiency", "100",
                    "--output", str(tmp_path / "c.json"),
                ]
            )

    def test_cluster_only_is_exclusive_and_validated(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--cluster-only", "--backend-only",
                 "--output", str(tmp_path / "x.json")]
            )
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--cluster-workers", "0",
                 "--output", str(tmp_path / "x.json")]
            )

    def test_cluster_validator_rejects_missing_keys(self, run_perf):
        with pytest.raises(ValueError, match="non-empty results"):
            run_perf.validate_cluster({"results": []})
        with pytest.raises(ValueError, match="missing key"):
            run_perf.validate_cluster(
                {
                    "num_nodes": 1, "requests": 8, "max_batch": 8,
                    "dtype": "float32",
                    "throughput_workers2_over_workers1": None,
                    "results": [{"workers": 1}],
                }
            )


class TestOnlineSection:
    def test_online_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        online = report["online"]
        assert online["num_nodes"] == 24
        assert online["steps"] == 16
        assert online["push_rows_per_s"] > 0
        assert online["push_ms_per_step"] > 0
        assert online["forecast_p95_ms"] >= online["forecast_p50_ms"] > 0
        assert online["forecast_rps"] > 0
        assert online["swap_latency_ms"] > 0
        assert online["forecast_during_swap_p95_ms"] > 0
        assert online["forecast_during_swap_requests"] >= 20
        # the two hard invariants of the hot-swap design
        assert online["forecast_during_swap_errors"] == 0
        assert online["swap_parity"] is True
        assert online["generation"] >= 1

    def test_online_only_mode_with_parity_gate(self, run_perf, tmp_path):
        output = tmp_path / "online.json"
        report = run_perf.main(
            [
                "--online-only",
                "--sizes", "24",
                "--m", "6",
                "--heads", "2",
                "--embedding-dim", "4",
                "--ffn-hidden", "4",
                "--hidden", "4",
                "--repeats", "1",
                "--online-steps", "16",
                "--assert-swap-parity",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-online"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the online section is written
        run_perf.validate_online(on_disk["online"])

    def test_online_only_is_exclusive(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--online-only", "--cluster-only",
                 "--output", str(tmp_path / "x.json")]
            )
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--online-steps", "2", "--output", str(tmp_path / "x.json")]
            )

    def test_parity_gate_needs_online_section(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--cluster-only", "--assert-swap-parity",
                 "--output", str(tmp_path / "x.json")]
            )

    def test_online_validator_rejects_missing_keys_and_errors(self, run_perf):
        with pytest.raises(ValueError, match="missing key"):
            run_perf.validate_online({"num_nodes": 24})
        good = {
            "num_nodes": 24, "num_significant": 6, "dtype": "float32",
            "steps": 16, "push_rows_per_s": 1.0, "push_ms_per_step": 1.0,
            "forecast_p50_ms": 1.0, "forecast_p95_ms": 1.0,
            "forecast_rps": 1.0, "swap_latency_ms": 1.0,
            "forecast_during_swap_p95_ms": 1.0,
            "forecast_during_swap_requests": 20,
            "forecast_during_swap_errors": 0, "swaps_during_forecast": 1,
            "swap_parity": True, "generation": 1,
        }
        run_perf.validate_online(good)  # must not raise
        with pytest.raises(ValueError, match="errored"):
            run_perf.validate_online(
                dict(good, forecast_during_swap_errors=2)
            )


class TestFaultsSection:
    def test_faults_section_present_and_sane(self, tiny_report):
        report, _ = tiny_report
        faults = report["faults"]
        assert faults["num_nodes"] == 24
        assert faults["workers"] == 2
        assert faults["plan"]["by_kind"]["kill"] == 2  # one per worker
        for name in ("baseline", "faulted"):
            entry = faults[name]
            assert entry["unresolved"] == 0  # nothing may ever hang
            assert entry["throughput_rps"] > 0
        assert faults["baseline"]["typed_errors"] == 0
        total = faults["faulted"]["ok"] + faults["faulted"]["typed_errors"]
        assert total == faults["requests"]
        assert faults["pool_restored"] is True
        assert faults["parked_workers"] == 0
        assert faults["total_restarts"] >= 2  # every worker was killed once
        assert faults["recovery_s"] >= 0
        assert (faults["recovery_s"]
                <= faults["restart_backoff_ceiling_s"] + 120)

    def test_faults_only_mode_with_recovery_gate(self, run_perf, tmp_path):
        output = tmp_path / "faults.json"
        report = run_perf.main(
            [
                "--faults-only",
                "--sizes", "24",
                "--m", "6",
                "--heads", "2",
                "--embedding-dim", "4",
                "--ffn-hidden", "4",
                "--hidden", "4",
                "--repeats", "1",
                "--cluster-requests", "16",
                "--assert-fault-recovery",
                "--output", str(output),
            ]
        )
        assert report["benchmark"] == "attention-faults"
        on_disk = json.loads(output.read_text())
        assert "results" not in on_disk  # only the faults section is written
        run_perf.validate_faults(on_disk["faults"])

    def test_faults_only_is_exclusive_and_gated(self, run_perf, tmp_path):
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--faults-only", "--cluster-only",
                 "--output", str(tmp_path / "x.json")]
            )
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--cluster-only", "--assert-fault-recovery",
                 "--output", str(tmp_path / "x.json")]
            )
        with pytest.raises(SystemExit):
            run_perf.main(
                ["--fault-workers", "0", "--output", str(tmp_path / "x.json")]
            )

    def test_faults_validator_rejects_missing_and_unresolved(self, run_perf):
        with pytest.raises(ValueError, match="missing key"):
            run_perf.validate_faults({"num_nodes": 24})
        good = {
            "num_nodes": 24, "workers": 2, "requests": 16, "max_batch": 1,
            "plan": {"workers": 2, "seed": 0, "horizon": 4, "events": 2,
                     "by_kind": {"kill": 2}},
            "baseline": {"ok": 16, "typed_errors": 0, "unresolved": 0,
                         "throughput_rps": 1.0, "latency_p95_ms": 1.0},
            "faulted": {"ok": 10, "typed_errors": 6, "unresolved": 0,
                        "throughput_rps": 1.0, "latency_p95_ms": 1.0},
            "throughput_retention": 1.0, "recovery_s": 0.5,
            "pool_restored": True, "parked_workers": 0,
            "total_restarts": 2, "redispatches": 1,
            "restart_backoff_s": 0.1, "restart_backoff_ceiling_s": 8.0,
        }
        run_perf.validate_faults(good)  # must not raise
        with pytest.raises(ValueError, match="never resolved"):
            run_perf.validate_faults(
                dict(good, faulted=dict(good["faulted"], unresolved=3))
            )


class TestBackendsValidator:
    def test_backends_validator_rejects_missing_keys(self, run_perf):
        with pytest.raises(ValueError, match="non-empty results"):
            run_perf.validate_backends({"results": []})
        with pytest.raises(ValueError, match="numpy reference"):
            run_perf.validate_backends(
                {
                    "num_nodes": 1, "num_significant": 1, "dtype": "float64",
                    "attention_speedup_numba_over_numpy": None,
                    "results": [{"backend": "numba", "available": False,
                                 "reason": "not installed"}],
                }
            )
        with pytest.raises(ValueError, match="reason"):
            run_perf.validate_backends(
                {
                    "num_nodes": 1, "num_significant": 1, "dtype": "float64",
                    "attention_speedup_numba_over_numpy": None,
                    "results": [{"backend": "numpy", "available": False}],
                }
            )
