"""Edge-case and failure-injection tests across the library.

These complement the per-module unit tests with the awkward inputs a
downstream user will eventually hit: missing data everywhere, constant
series, trainers without scalers, degenerate graph sizes, and extreme
α-entmax inputs.
"""

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.core import SAGDFN, SAGDFNConfig, Trainer
from repro.data import DataLoader, MultivariateTimeSeries, SlidingWindowDataset, StandardScaler
from repro.experiments.common import prepare_data_from_series
from repro.nn.loss import masked_mae
from repro.optim import Adam
from repro.sparse import alpha_entmax_np, entmax_support_size
from repro.tensor import Tensor


class TestEntmaxExtremes:
    def test_huge_logits_do_not_overflow(self):
        z = np.array([[1e4, -1e4, 0.0]])
        for alpha in (1.0, 1.5, 2.0):
            p = alpha_entmax_np(z, alpha)
            assert np.all(np.isfinite(p))
            assert p[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_tied_logits_share_mass(self):
        z = np.array([[3.0, 3.0, -50.0]])
        p = alpha_entmax_np(z, 1.5)
        assert p[0, 0] == pytest.approx(p[0, 1], abs=1e-9)
        assert p[0, 2] == pytest.approx(0.0, abs=1e-9)

    def test_single_element_axis(self):
        p = alpha_entmax_np(np.array([[4.2]]), 1.7)
        assert p[0, 0] == pytest.approx(1.0)

    def test_support_size_counts_positives(self):
        p = np.array([[0.5, 0.5, 0.0], [1.0, 0.0, 0.0]])
        assert entmax_support_size(p).tolist() == [2, 1]


class TestDegenerateData:
    def test_constant_series_trains_without_nan(self):
        series = MultivariateTimeSeries(np.full((120, 6, 1), 42.0), step_minutes=5)
        data = prepare_data_from_series(series, history=4, horizon=4, batch_size=8)
        config = SAGDFNConfig(num_nodes=6, input_dim=2, history=4, horizon=4, embedding_dim=4,
                              num_significant=3, top_k=2, hidden_size=8, num_heads=1, ffn_hidden=4)
        model = SAGDFN(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        losses = trainer.fit(data.train_loader, epochs=1)
        assert np.isfinite(losses.train_losses[0])

    def test_all_missing_batch_gives_zero_loss(self):
        prediction = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4, 1)))
        target = Tensor(np.zeros((2, 3, 4, 1)))
        assert masked_mae(prediction, target, null_value=0.0).item() == pytest.approx(0.0)

    def test_heavily_missing_series_still_trains(self, rng):
        values = np.abs(rng.normal(loc=30, scale=5, size=(150, 8, 1)))
        missing = rng.random(values.shape) < 0.5
        values = np.where(missing, 0.0, values)
        series = MultivariateTimeSeries(values, step_minutes=5)
        data = prepare_data_from_series(series, history=4, horizon=4, batch_size=8)
        model = build_baseline("GRU", 8, 2, 4, 4, hidden_size=8)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=data.scaler)
        history = trainer.fit(data.train_loader, epochs=1)
        assert np.isfinite(history.train_losses[0])

    def test_trainer_without_scaler(self, rng):
        values = rng.normal(size=(100, 5, 1)) + 10.0
        series = MultivariateTimeSeries(values, step_minutes=5)
        dataset = SlidingWindowDataset(series.with_time_covariates(), 4, 4, target_series=series)
        loader = DataLoader(dataset, batch_size=8)
        model = build_baseline("GRU", 5, 2, 4, 4, hidden_size=8)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), scaler=None)
        history = trainer.fit(loader, epochs=1)
        assert np.isfinite(history.train_losses[0])

    def test_evaluate_on_empty_loader_returns_nan(self, rng):
        model = build_baseline("GRU", 5, 2, 4, 4, hidden_size=8)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))

        class _EmptyLoader:
            def __iter__(self):
                return iter([])

        metrics = trainer.evaluate(_EmptyLoader())
        assert np.isnan(metrics["mae"])


class TestDegenerateGraphs:
    def test_sagdfn_with_m_equal_n(self, rng):
        """Slim width equal to the node count degrades gracefully to a full graph."""
        config = SAGDFNConfig(num_nodes=6, input_dim=2, history=4, horizon=3, embedding_dim=4,
                              num_significant=6, top_k=6, hidden_size=8, num_heads=1,
                              ffn_hidden=4)
        model = SAGDFN(config)
        out = model(Tensor(rng.normal(size=(2, 4, 6, 2))))
        assert out.shape == (2, 3, 6, 1)
        assert model.index_set.shape == (6,)

    def test_sagdfn_with_two_nodes(self, rng):
        config = SAGDFNConfig(num_nodes=2, input_dim=2, history=3, horizon=2, embedding_dim=3,
                              num_significant=1, top_k=1, hidden_size=4, num_heads=1, ffn_hidden=3)
        model = SAGDFN(config)
        out = model(Tensor(rng.normal(size=(1, 3, 2, 2))))
        assert out.shape == (1, 2, 2, 1)

    def test_dcrnn_with_disconnected_graph(self, rng):
        adjacency = np.zeros((6, 6))
        model = build_baseline("DCRNN", 6, 2, 4, 3, adjacency=adjacency, hidden_size=8)
        out = model(Tensor(rng.normal(size=(2, 4, 6, 2))))
        assert np.all(np.isfinite(out.data))


class TestScalerEdgeCases:
    def test_scaler_on_single_value(self):
        scaler = StandardScaler().fit(np.array([[5.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)
        assert scaler.inverse_transform(np.array([[0.0]]))[0, 0] == pytest.approx(5.0)

    def test_prepare_data_rejects_too_short_series(self, rng):
        series = MultivariateTimeSeries(rng.normal(size=(30, 4, 1)))
        with pytest.raises(ValueError):
            prepare_data_from_series(series, history=12, horizon=12)
