"""End-to-end checks of every cell in the forecasting-scenario grid.

The ``scenario_cell`` fixture (``conftest.py``) runs one full
train → bundle round-trip → serve → metrics pipeline per cell of the
(head: point|quantile) × (exog: off|on) × (data: dense|missing) matrix;
these tests assert the contract every cell must satisfy.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import SAGDFNConfig

REL_TOL = 1e-10  # kernel vs module forward, float64


def _rel_err(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(float(np.max(np.abs(b))), 1e-12)
    return float(np.max(np.abs(a - b))) / scale


class TestScenarioConfig:
    def test_config_declares_scenario(self, scenario_cell):
        spec, config = scenario_cell.spec, scenario_cell.config
        assert config.quantiles == spec.quantiles
        assert config.exog_dim == (1 if spec.exog == "on" else 0)
        assert config.mask_input is spec.mask_input
        assert config.encoder_input_width == scenario_cell.data.input_dim

    def test_loader_emits_declared_width(self, scenario_cell):
        batch_x, batch_y = scenario_cell.batch_x, scenario_cell.batch_y
        assert batch_x.shape[-1] == scenario_cell.config.encoder_input_width
        assert batch_y.shape[-1] == 1
        if scenario_cell.spec.mask_input:
            mask_channel = batch_x[..., -1]
            assert set(np.unique(mask_channel)) <= {0.0, 1.0}


class TestScenarioTraining:
    def test_training_loss_is_finite(self, scenario_cell):
        assert np.isfinite(scenario_cell.train_loss)

    def test_val_metrics_finite_and_complete(self, scenario_cell):
        metrics = scenario_cell.val_metrics
        for key in ("mae", "rmse", "mape"):
            assert np.isfinite(metrics[key]), key
        if scenario_cell.spec.head == "quantile":
            assert np.isfinite(metrics["pinball"])
            assert metrics["interval_width"] >= 0.0
            for level in scenario_cell.spec.quantiles:
                coverage = metrics[f"coverage@{level:g}"]
                assert 0.0 <= coverage <= 1.0
        else:
            assert "pinball" not in metrics


class TestScenarioBundle:
    def test_bundle_records_scenario(self, scenario_cell):
        scenario = scenario_cell.bundle.scenario
        spec = scenario_cell.spec
        expected_quantiles = None if spec.quantiles is None else list(spec.quantiles)
        assert scenario["quantiles"] == expected_quantiles
        assert scenario["exog_dim"] == (1 if spec.exog == "on" else 0)
        assert scenario["mask_input"] is spec.mask_input
        assert scenario_cell.bundle.version >= 2

    def test_bundle_config_rebuilds_identically(self, scenario_cell):
        rebuilt = SAGDFNConfig(**scenario_cell.bundle.config)
        # Bundles record the backend the model actually resolved (the cells
        # train with backend=None → numpy); every other field round-trips.
        assert rebuilt.backend == "numpy"
        assert rebuilt == dataclasses.replace(scenario_cell.config,
                                              backend=rebuilt.backend)


class TestScenarioServing:
    def test_prediction_shape(self, scenario_cell):
        batch, horizon = scenario_cell.batch_y.shape[:2]
        num_nodes = scenario_cell.batch_y.shape[2]
        width = scenario_cell.config.num_quantiles
        assert scenario_cell.kernel_pred.shape == (batch, horizon, num_nodes, width)

    def test_predictions_finite(self, scenario_cell):
        assert np.all(np.isfinite(scenario_cell.kernel_pred))
        assert np.all(np.isfinite(scenario_cell.module_pred))

    def test_kernel_matches_module_forward(self, scenario_cell):
        assert _rel_err(scenario_cell.kernel_pred, scenario_cell.module_pred) <= REL_TOL

    def test_chunked_matches_unchunked(self, scenario_cell):
        assert _rel_err(scenario_cell.chunked_pred, scenario_cell.module_pred) <= 1e-9

    def test_serve_metrics_match_trainer_contract(self, scenario_cell):
        metrics = scenario_cell.serve_metrics
        assert np.isfinite(metrics["mae"])
        if scenario_cell.spec.head == "quantile":
            for level in scenario_cell.spec.quantiles:
                assert f"coverage@{level:g}" in metrics

    def test_mask_kwarg_equals_mask_channel(self, scenario_cell):
        """`predict(x, mask=m)` must equal `predict(concat(x, m))`."""
        if not scenario_cell.spec.mask_input:
            return
        from repro.serve.service import ForecastService

        service = ForecastService.from_checkpoint(scenario_cell.bundle_path)
        batch_x = scenario_cell.batch_x
        bare, mask = batch_x[..., :-1], batch_x[..., -1]
        via_kwarg = service.predict(bare, mask=mask)
        via_channel = service.predict(batch_x)
        np.testing.assert_array_equal(via_kwarg, via_channel)

    def test_mask_rejected_for_dense_models(self, scenario_cell):
        if scenario_cell.spec.mask_input:
            return
        import pytest

        from repro.serve.service import ForecastService

        service = ForecastService.from_checkpoint(scenario_cell.bundle_path)
        mask = np.ones(scenario_cell.batch_x.shape[:3])
        with pytest.raises(ValueError, match="mask_input"):
            service.predict(scenario_cell.batch_x, mask=mask)


class TestQuantileHead:
    def test_quantile_spread_is_meaningful(self, scenario_cell):
        """After training, upper and lower heads should not be identical."""
        if scenario_cell.spec.head != "quantile":
            return
        prediction = scenario_cell.kernel_pred
        spread = np.abs(prediction[..., -1] - prediction[..., 0])
        assert float(spread.mean()) > 0.0

    def test_median_head_scores_point_metrics(self, scenario_cell):
        """Point MAE of serve metrics equals a manual median-head MAE."""
        if scenario_cell.spec.head != "quantile":
            return
        from repro.evaluation.streaming import StreamingMetrics
        from repro.serve.service import ForecastService

        spec = scenario_cell.spec
        median = int(np.argmin(np.abs(np.asarray(spec.quantiles) - 0.5)))
        service = ForecastService.from_checkpoint(scenario_cell.bundle_path)
        manual = StreamingMetrics(null_value=0.0)
        for batch_x, batch_y in scenario_cell.data.test_loader:
            prediction = service.predict(batch_x)
            manual.update(prediction[..., median : median + 1], batch_y)
        assert manual.compute()["mae"] == scenario_cell.serve_metrics["mae"]
