"""Property-based tests (hypothesis) for the scenario-system math.

Covers the analytic identities the quantile / missing-data machinery must
satisfy: pinball at the median is half the MAE, sorted quantile heads give
monotone coverage, crossing-repair never hurts the pinball loss, and masked
entries are invisible to both the loss value and every gradient.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation.streaming import StreamingMetrics
from repro.metrics import enforce_quantile_monotonicity, mae, pinball, quantile_coverage
from repro.nn.loss import masked_mae, masked_pinball, pinball_loss
from repro.tensor import Tensor

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.5, max_value=10.0, allow_nan=False, allow_infinity=False)


def forecast_arrays(elements, max_batch: int = 3, max_nodes: int = 4):
    """(B, f, N, 1)-shaped arrays, the loss/metric input layout."""
    shapes = st.tuples(
        st.integers(1, max_batch), st.integers(1, 3), st.integers(1, max_nodes), st.just(1)
    )
    return shapes.flatmap(lambda shape: arrays(np.float64, shape, elements=elements))


quantile_levels = st.lists(
    st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    min_size=2,
    max_size=5,
    unique=True,
).map(lambda qs: tuple(sorted(qs)))


# --------------------------------------------------------------------- #
# Pinball ↔ MAE identity
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(forecast_arrays(finite))
def test_pinball_at_median_is_half_mae_numpy(target):
    prediction = target * 0.5 + 1.0
    assert np.isclose(
        pinball(prediction, target, (0.5,), null_value=None),
        0.5 * mae(prediction, target, null_value=None),
        rtol=0,
        atol=1e-12,
    )


@settings(max_examples=40, deadline=None)
@given(forecast_arrays(positive))
def test_masked_pinball_at_median_is_half_masked_mae(target):
    prediction = Tensor(target * 0.8 + 0.1)
    target_tensor = Tensor(target)
    half_mae = 0.5 * float(masked_mae(prediction, target_tensor).data)
    assert np.isclose(
        float(masked_pinball(prediction, target_tensor, (0.5,)).data),
        half_mae,
        rtol=0,
        atol=1e-12,
    )


@settings(max_examples=40, deadline=None)
@given(forecast_arrays(finite))
def test_unmasked_pinball_loss_matches_numpy_reference(target):
    quantiles = (0.25, 0.5, 0.75)
    prediction = np.concatenate([target * s for s in (0.5, 1.0, 1.5)], axis=-1)
    assert np.isclose(
        float(pinball_loss(Tensor(prediction), Tensor(target), quantiles).data),
        pinball(prediction, target, quantiles, null_value=None),
        rtol=1e-12,
    )


# --------------------------------------------------------------------- #
# Coverage / crossing monotonicity
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(forecast_arrays(finite), quantile_levels)
def test_sorted_heads_give_monotone_coverage(target, quantiles):
    rng = np.random.default_rng(7)
    raw = target + rng.normal(size=target.shape[:-1] + (len(quantiles),))
    prediction = enforce_quantile_monotonicity(raw)
    coverage = quantile_coverage(prediction, target, quantiles, null_value=None)
    values = [coverage[q] for q in quantiles]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


@settings(max_examples=40, deadline=None)
@given(forecast_arrays(finite), quantile_levels)
def test_crossing_repair_never_increases_pinball(target, quantiles):
    rng = np.random.default_rng(11)
    raw = target + rng.normal(size=target.shape[:-1] + (len(quantiles),))
    repaired = enforce_quantile_monotonicity(raw)
    assert np.all(np.diff(repaired, axis=-1) >= 0.0)
    assert (
        pinball(repaired, target, quantiles, null_value=None)
        <= pinball(raw, target, quantiles, null_value=None) + 1e-12
    )


@settings(max_examples=30, deadline=None)
@given(forecast_arrays(positive), quantile_levels)
def test_streaming_coverage_monotone_for_sorted_predictions(target, quantiles):
    rng = np.random.default_rng(3)
    prediction = enforce_quantile_monotonicity(
        target + rng.normal(size=target.shape[:-1] + (len(quantiles),))
    )
    stream = StreamingMetrics(null_value=0.0, quantiles=quantiles)
    stream.update(prediction, target)
    metrics = stream.compute()
    values = [metrics[f"coverage@{q:g}"] for q in quantiles]
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
    assert metrics["interval_width"] >= 0.0


# --------------------------------------------------------------------- #
# Mask invariance: missing entries affect neither loss nor gradients
# --------------------------------------------------------------------- #
def _masked_case(loss_kind: str):
    """A prediction/target pair with missing targets and its loss closure."""
    rng = np.random.default_rng(42)
    target = np.abs(rng.normal(2.0, 1.0, size=(2, 3, 4, 1))) + 0.5
    missing = rng.random(target.shape) < 0.3
    target[missing] = 0.0  # the masked-loss null sentinel
    if loss_kind == "pinball":
        quantiles = (0.1, 0.5, 0.9)
        prediction = rng.normal(2.0, 1.0, size=target.shape[:-1] + (3,))

        def loss_fn(pred: Tensor) -> Tensor:
            return masked_pinball(pred, Tensor(target), quantiles)

        mask = np.broadcast_to(~missing, prediction.shape)
    else:
        prediction = rng.normal(2.0, 1.0, size=target.shape)

        def loss_fn(pred: Tensor) -> Tensor:
            return masked_mae(pred, Tensor(target))

        mask = ~missing
    return prediction, missing, mask, loss_fn


@pytest.mark.parametrize("loss_kind", ["mae", "pinball"])
def test_gradient_is_zero_at_masked_entries(loss_kind):
    prediction, _, mask, loss_fn = _masked_case(loss_kind)
    pred = Tensor(prediction, requires_grad=True)
    loss_fn(pred).backward()
    assert np.all(pred.grad[~mask] == 0.0)
    assert np.any(pred.grad[mask] != 0.0)


@pytest.mark.parametrize("loss_kind", ["mae", "pinball"])
def test_loss_bitwise_invariant_to_masked_predictions(loss_kind):
    prediction, _, mask, loss_fn = _masked_case(loss_kind)
    baseline = float(loss_fn(Tensor(prediction)).data)
    perturbed = prediction.copy()
    perturbed[~mask] += np.random.default_rng(0).normal(0.0, 100.0, size=(~mask).sum())
    assert float(loss_fn(Tensor(perturbed)).data) == baseline

    grad_base = Tensor(prediction, requires_grad=True)
    loss_fn(grad_base).backward()
    grad_pert = Tensor(perturbed, requires_grad=True)
    loss_fn(grad_pert).backward()
    np.testing.assert_array_equal(grad_base.grad[mask], grad_pert.grad[mask])


@pytest.mark.parametrize("loss_kind", ["mae", "pinball"])
def test_finite_difference_confirms_masked_entries_are_dead(loss_kind):
    """Numerical d(loss)/d(prediction) at masked entries is exactly zero."""
    prediction, _, mask, loss_fn = _masked_case(loss_kind)
    baseline = float(loss_fn(Tensor(prediction)).data)
    masked_indices = np.argwhere(~mask)
    for index in map(tuple, masked_indices[:5]):
        for eps in (1e-3, 1.0):
            bumped = prediction.copy()
            bumped[index] += eps
            assert float(loss_fn(Tensor(bumped)).data) == baseline


def test_streaming_metrics_invariant_to_masked_predictions():
    rng = np.random.default_rng(5)
    target = np.abs(rng.normal(2.0, 1.0, size=(4, 3, 5, 1))) + 0.5
    missing = rng.random(target.shape) < 0.4
    target[missing] = 0.0
    quantiles = (0.1, 0.5, 0.9)
    prediction = rng.normal(2.0, 1.0, size=target.shape[:-1] + (3,))
    perturbed = prediction.copy()
    perturbed += np.broadcast_to(missing, perturbed.shape) * rng.normal(
        0.0, 50.0, size=perturbed.shape
    )

    def run(pred):
        stream = StreamingMetrics(null_value=0.0, quantiles=quantiles)
        stream.update(pred, target)
        return stream.compute()

    assert run(prediction) == run(perturbed)
