"""Tests for the frozen-graph inference service and the micro-batching queue."""

import threading
import time

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.core import SAGDFN, Trainer
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series, small_sagdfn_config
from repro.optim import Adam
from repro.serve import ForecastService, MicroBatcher
from repro.serve.__main__ import main as serve_main
from repro.tensor import Tensor, no_grad
from repro.utils import save_bundle, save_checkpoint


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """A briefly-trained SAGDFN, its data, and a serving bundle on disk."""
    series = generate_traffic_dataset(TrafficConfig(num_nodes=8, num_steps=160, seed=5))
    data = prepare_data_from_series(series, history=4, horizon=3, batch_size=8,
                                    seed=0, name="serve_tiny")
    config = small_sagdfn_config(data, num_significant=6, top_k=4,
                                 convergence_iteration=3, hidden_size=12)
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    trainer.fit(data.train_loader, epochs=1)
    model.refresh_graph(config.convergence_iteration + 1)  # freeze the index set
    bundle_path = save_bundle(model, tmp_path_factory.mktemp("serve") / "bundle",
                              scaler=data.scaler, metadata={"epochs": 1})
    return model, trainer, data, bundle_path


def _trainer_forward(model, scaler, batch_x):
    """The exact Trainer.evaluate per-batch forward."""
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            out = model(Tensor(batch_x)) * scaler.std_ + scaler.mean_
        return out.data
    finally:
        model.train(was_training)


class TestForecastService:
    def test_frozen_predictions_match_trainer_forward(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        assert service.frozen is not None
        for batch_x, _ in data.test_loader:
            reference = _trainer_forward(model, data.scaler, batch_x)
            assert np.abs(service.predict(batch_x) - reference).max() < 1e-6

    def test_from_checkpoint_matches_live_model(self, trained):
        model, _, data, bundle_path = trained
        live = ForecastService(model, scaler=data.scaler)
        rehydrated = ForecastService.from_checkpoint(bundle_path)
        assert rehydrated.frozen is not None
        assert np.array_equal(rehydrated.frozen.index_set, live.frozen.index_set)
        assert np.allclose(rehydrated.frozen.adjacency, live.frozen.adjacency)
        batch_x, _ = next(iter(data.test_loader))
        assert np.allclose(rehydrated.predict(batch_x), live.predict(batch_x))

    def test_streaming_evaluate_matches_trainer(self, trained):
        model, trainer, data, bundle_path = trained
        service = ForecastService.from_checkpoint(bundle_path)
        served = service.evaluate(data.test_loader)
        reference = trainer.evaluate(data.test_loader)
        for key in ("mae", "rmse", "mape"):
            assert served[key] == pytest.approx(reference[key], rel=1e-9)

    def test_unfrozen_service_falls_back_to_full_forward(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler, freeze_graph=False)
        assert service.frozen is None
        batch_x, _ = next(iter(data.test_loader))
        reference = _trainer_forward(model, data.scaler, batch_x)
        assert np.allclose(service.predict(batch_x), reference)

    def test_generic_module_is_served_without_frozen_graph(self, rng):
        model = build_baseline("GRU", 5, 2, 4, 3, hidden_size=8)
        service = ForecastService(model)
        assert service.frozen is None
        batch = rng.normal(size=(2, 4, 5, 2))
        assert service.predict(batch).shape == (2, 3, 5, 1)

    def test_predict_one_and_validation(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        single = service.predict_one(batch_x[0])
        assert np.allclose(single, service.predict(batch_x[:1])[0])
        with pytest.raises(ValueError):
            service.predict(batch_x[0])  # missing batch dimension
        with pytest.raises(ValueError):
            service.predict_one(batch_x)  # extra batch dimension

    def test_request_counter(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        service.predict(batch_x)
        service.predict_one(batch_x[0])
        assert service.num_requests == batch_x.shape[0] + 1

    def test_frozen_graph_skips_attention(self, trained, monkeypatch):
        """After freezing, requests must not re-run SNS or the attention."""
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)

        def _fail(*args, **kwargs):
            raise AssertionError("attention re-ran during a frozen-graph request")

        monkeypatch.setattr(model.attention, "forward", _fail)
        monkeypatch.setattr(model.sampler, "sample", _fail)
        batch_x, _ = next(iter(data.test_loader))
        service.predict(batch_x)  # must not touch the patched paths


class TestMicroBatcher:
    def test_results_match_direct_prediction_in_order(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        direct = service.predict(batch_x)
        with MicroBatcher(service.predict, max_batch=3, max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(window) for window in batch_x]
            results = np.stack([future.result(timeout=30) for future in futures])
        assert np.allclose(results, direct)
        assert batcher.stats.num_requests == batch_x.shape[0]

    def test_coalesces_up_to_max_batch(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        batcher = MicroBatcher(service.predict, max_batch=4, max_wait_ms=200.0)
        try:
            futures = [batcher.submit(window) for window in batch_x[:8]]
            for future in futures:
                future.result(timeout=30)
            assert batcher.stats.max_batch_size <= 4
            assert batcher.stats.num_batches >= 2
            assert batcher.stats.mean_batch_size > 1.0
        finally:
            batcher.close()

    def test_concurrent_clients(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        direct = service.predict(batch_x)
        results = {}

        def client(i):
            results[i] = batcher.predict(batch_x[i], timeout=30)

        with MicroBatcher(service.predict, max_batch=8, max_wait_ms=10.0) as batcher:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(batch_x.shape[0])]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for i in range(batch_x.shape[0]):
            assert np.allclose(results[i], direct[i])

    def test_prediction_errors_propagate_to_futures(self):
        def broken(batch):
            raise RuntimeError("model exploded")

        with MicroBatcher(broken, max_batch=2, max_wait_ms=1.0) as batcher:
            future = batcher.submit(np.zeros((2, 3, 1)))
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=30)

    def test_failed_batches_are_recorded_in_stats(self):
        def broken(batch):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(broken, max_batch=4, max_wait_ms=50.0)
        try:
            futures = [batcher.submit(np.zeros((1, 1, 1))) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(timeout=30)
        finally:
            batcher.close()
        stats = batcher.stats
        assert stats.num_requests == 3
        assert stats.num_batches >= 1
        assert stats.num_failed_batches == stats.num_batches
        assert stats.mean_batch_size > 0

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda batch: batch, max_batch=2, max_wait_ms=0.0)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(np.zeros((1, 1, 1)))
        batcher.close()  # idempotent

    def test_submit_close_race_never_drops_a_future(self):
        """Hammer submit() against close(): every submission must either be
        rejected with RuntimeError or produce a Future that resolves — a
        Future that never resolves means the window landed on a dead queue."""
        for round_ in range(20):
            batcher = MicroBatcher(lambda batch: batch * 2.0, max_batch=4,
                                   max_wait_ms=0.0)
            outcomes = []

            def client():
                try:
                    outcomes.append(batcher.submit(np.ones((1, 1, 1))))
                except RuntimeError:
                    outcomes.append(None)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            batcher.close()
            for thread in threads:
                thread.join()
            for future in outcomes:
                if future is not None:
                    assert np.allclose(future.result(timeout=5), 2.0)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_wait_ms=-1.0)


class TestServeCLI:
    def test_synthetic_requests_roundtrip(self, trained, tmp_path, capsys):
        _, _, _, bundle_path = trained
        output = tmp_path / "predictions.npy"
        code = serve_main([str(bundle_path), "--requests", "6", "--max-batch", "3",
                           "--output", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "frozen-graph mode" in printed
        assert "served 6 requests" in printed
        predictions = np.load(output)
        assert predictions.shape[0] == 6

    def test_input_file_requests(self, trained, tmp_path, capsys):
        model, _, data, bundle_path = trained
        batch_x, _ = next(iter(data.test_loader))
        request_path = tmp_path / "requests.npy"
        np.save(request_path, batch_x)
        output = tmp_path / "out.npy"
        code = serve_main([str(bundle_path), "--input", str(request_path),
                           "--output", str(output)])
        assert code == 0
        service = ForecastService(model, scaler=data.scaler)
        assert np.allclose(np.load(output), service.predict(batch_x), atol=1e-6)

    def test_plain_checkpoint_is_rejected(self, trained, tmp_path):
        model, _, _, _ = trained
        plain = save_checkpoint(model, tmp_path / "plain")
        with pytest.raises(ValueError, match="not a serving bundle"):
            serve_main([str(plain)])