"""Tests for the frozen-graph inference service and the micro-batching queue."""

import threading
import time

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.core import SAGDFN, Trainer
from repro.data.synthetic.traffic import TrafficConfig, generate_traffic_dataset
from repro.experiments.common import prepare_data_from_series, small_sagdfn_config
from repro.optim import Adam
from repro.serve import BatchStats, ForecastService, MicroBatcher
from repro.serve.__main__ import main as serve_main
from repro.tensor import Tensor, no_grad
from repro.utils import save_bundle, save_checkpoint


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    """A briefly-trained SAGDFN, its data, and a serving bundle on disk."""
    series = generate_traffic_dataset(TrafficConfig(num_nodes=8, num_steps=160, seed=5))
    data = prepare_data_from_series(series, history=4, horizon=3, batch_size=8,
                                    seed=0, name="serve_tiny")
    config = small_sagdfn_config(data, num_significant=6, top_k=4,
                                 convergence_iteration=3, hidden_size=12)
    model = SAGDFN(config)
    trainer = Trainer(model, Adam(model.parameters(), lr=5e-3), scaler=data.scaler)
    trainer.fit(data.train_loader, epochs=1)
    model.refresh_graph(config.convergence_iteration + 1)  # freeze the index set
    bundle_path = save_bundle(model, tmp_path_factory.mktemp("serve") / "bundle",
                              scaler=data.scaler, metadata={"epochs": 1})
    return model, trainer, data, bundle_path


def _trainer_forward(model, scaler, batch_x):
    """The exact Trainer.evaluate per-batch forward."""
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            out = model(Tensor(batch_x)) * scaler.std_ + scaler.mean_
        return out.data
    finally:
        model.train(was_training)


class TestForecastService:
    def test_frozen_predictions_match_trainer_forward(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        assert service.frozen is not None
        for batch_x, _ in data.test_loader:
            reference = _trainer_forward(model, data.scaler, batch_x)
            assert np.abs(service.predict(batch_x) - reference).max() < 1e-6

    def test_from_checkpoint_matches_live_model(self, trained):
        model, _, data, bundle_path = trained
        live = ForecastService(model, scaler=data.scaler)
        rehydrated = ForecastService.from_checkpoint(bundle_path)
        assert rehydrated.frozen is not None
        assert np.array_equal(rehydrated.frozen.index_set, live.frozen.index_set)
        assert np.allclose(rehydrated.frozen.adjacency, live.frozen.adjacency)
        batch_x, _ = next(iter(data.test_loader))
        assert np.allclose(rehydrated.predict(batch_x), live.predict(batch_x))

    def test_streaming_evaluate_matches_trainer(self, trained):
        model, trainer, data, bundle_path = trained
        service = ForecastService.from_checkpoint(bundle_path)
        served = service.evaluate(data.test_loader)
        reference = trainer.evaluate(data.test_loader)
        for key in ("mae", "rmse", "mape"):
            assert served[key] == pytest.approx(reference[key], rel=1e-9)

    def test_unfrozen_service_falls_back_to_full_forward(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler, freeze_graph=False)
        assert service.frozen is None
        batch_x, _ = next(iter(data.test_loader))
        reference = _trainer_forward(model, data.scaler, batch_x)
        assert np.allclose(service.predict(batch_x), reference)

    def test_generic_module_is_served_without_frozen_graph(self, rng):
        model = build_baseline("GRU", 5, 2, 4, 3, hidden_size=8)
        service = ForecastService(model)
        assert service.frozen is None
        batch = rng.normal(size=(2, 4, 5, 2))
        assert service.predict(batch).shape == (2, 3, 5, 1)

    def test_predict_one_and_validation(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        single = service.predict_one(batch_x[0])
        assert np.allclose(single, service.predict(batch_x[:1])[0])
        with pytest.raises(ValueError):
            service.predict(batch_x[0])  # missing batch dimension
        with pytest.raises(ValueError):
            service.predict_one(batch_x)  # extra batch dimension

    def test_request_counter(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        service.predict(batch_x)
        service.predict_one(batch_x[0])
        assert service.num_requests == batch_x.shape[0] + 1

    def test_frozen_graph_skips_attention(self, trained, monkeypatch):
        """After freezing, requests must not re-run SNS or the attention."""
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)

        def _fail(*args, **kwargs):
            raise AssertionError("attention re-ran during a frozen-graph request")

        monkeypatch.setattr(model.attention, "forward", _fail)
        monkeypatch.setattr(model.sampler, "sample", _fail)
        batch_x, _ = next(iter(data.test_loader))
        service.predict(batch_x)  # must not touch the patched paths


class TestMicroBatcher:
    def test_results_match_direct_prediction_in_order(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        direct = service.predict(batch_x)
        with MicroBatcher(service.predict, max_batch=3, max_wait_ms=20.0) as batcher:
            futures = [batcher.submit(window) for window in batch_x]
            results = np.stack([future.result(timeout=30) for future in futures])
        assert np.allclose(results, direct)
        assert batcher.stats.num_requests == batch_x.shape[0]

    def test_coalesces_up_to_max_batch(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        batcher = MicroBatcher(service.predict, max_batch=4, max_wait_ms=200.0)
        try:
            futures = [batcher.submit(window) for window in batch_x[:8]]
            for future in futures:
                future.result(timeout=30)
            assert batcher.stats.max_batch_size <= 4
            assert batcher.stats.num_batches >= 2
            assert batcher.stats.mean_batch_size > 1.0
        finally:
            batcher.close()

    def test_concurrent_clients(self, trained):
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        direct = service.predict(batch_x)
        results = {}

        def client(i):
            results[i] = batcher.predict(batch_x[i], timeout=30)

        with MicroBatcher(service.predict, max_batch=8, max_wait_ms=10.0) as batcher:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(batch_x.shape[0])]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for i in range(batch_x.shape[0]):
            assert np.allclose(results[i], direct[i])

    def test_prediction_errors_propagate_to_futures(self):
        def broken(batch):
            raise RuntimeError("model exploded")

        with MicroBatcher(broken, max_batch=2, max_wait_ms=1.0) as batcher:
            future = batcher.submit(np.zeros((2, 3, 1)))
            with pytest.raises(RuntimeError, match="model exploded"):
                future.result(timeout=30)

    def test_failed_batches_are_recorded_in_stats(self):
        def broken(batch):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(broken, max_batch=4, max_wait_ms=50.0)
        try:
            futures = [batcher.submit(np.zeros((1, 1, 1))) for _ in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(timeout=30)
        finally:
            batcher.close()
        stats = batcher.stats
        assert stats.num_requests == 3
        assert stats.num_batches >= 1
        assert stats.num_failed_batches == stats.num_batches
        assert stats.mean_batch_size > 0

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda batch: batch, max_batch=2, max_wait_ms=0.0)
        batcher.close()
        with pytest.raises(RuntimeError):
            batcher.submit(np.zeros((1, 1, 1)))
        batcher.close()  # idempotent

    def test_submit_close_race_never_drops_a_future(self):
        """Hammer submit() against close(): every submission must either be
        rejected with RuntimeError or produce a Future that resolves — a
        Future that never resolves means the window landed on a dead queue."""
        for round_ in range(20):
            batcher = MicroBatcher(lambda batch: batch * 2.0, max_batch=4,
                                   max_wait_ms=0.0)
            outcomes = []

            def client():
                try:
                    outcomes.append(batcher.submit(np.ones((1, 1, 1))))
                except RuntimeError:
                    outcomes.append(None)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            batcher.close()
            for thread in threads:
                thread.join()
            for future in outcomes:
                if future is not None:
                    assert np.allclose(future.result(timeout=5), 2.0)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, expected_channels=0)

    def test_cancelled_future_does_not_kill_worker(self):
        """Regression: a Future cancelled while queued used to blow up the
        worker thread with InvalidStateError at set_result time, silently
        killing the batcher for every later request."""
        entered = threading.Event()
        release = threading.Event()

        def slow(batch):
            entered.set()
            release.wait(timeout=30)
            return batch * 2.0

        batcher = MicroBatcher(slow, max_batch=4, max_wait_ms=0.0)
        try:
            blocker = batcher.submit(np.ones((1, 1, 1)))
            assert entered.wait(timeout=10)
            # Three requests queue behind the in-flight batch; cancel the
            # middle one before the worker ever sees it.
            queued = [batcher.submit(np.ones((1, 1, 1))) for _ in range(3)]
            assert queued[1].cancel()
            release.set()
            assert np.allclose(blocker.result(timeout=30), 2.0)
            assert np.allclose(queued[0].result(timeout=30), 2.0)
            assert np.allclose(queued[2].result(timeout=30), 2.0)
            assert queued[1].cancelled()
            # The worker thread must have survived the cancelled Future.
            follow_up = batcher.submit(np.ones((1, 1, 1)))
            assert np.allclose(follow_up.result(timeout=30), 2.0)
            assert batcher.stats.num_requests == 4  # cancelled one not served
        finally:
            release.set()
            batcher.close()

    def test_fully_cancelled_batch_is_skipped(self):
        entered = threading.Event()
        release = threading.Event()

        def slow(batch):
            entered.set()
            release.wait(timeout=30)
            return batch

        batcher = MicroBatcher(slow, max_batch=2, max_wait_ms=0.0)
        try:
            blocker = batcher.submit(np.ones((1, 1, 1)))
            assert entered.wait(timeout=10)
            queued = [batcher.submit(np.ones((1, 1, 1))) for _ in range(2)]
            for future in queued:
                assert future.cancel()
            release.set()
            blocker.result(timeout=30)
            follow_up = batcher.submit(np.ones((1, 1, 1)))
            follow_up.result(timeout=30)
            assert batcher.stats.num_requests == 2
        finally:
            release.set()
            batcher.close()


class TestBatchStatsThreadSafety:
    def test_record_is_thread_safe(self):
        """Regression: unguarded ``num_requests += batch`` dropped counts
        under concurrent recording."""
        stats = BatchStats()
        rounds, threads_n = 2000, 8

        def hammer():
            for _ in range(rounds):
                stats.record(1)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.num_requests == rounds * threads_n
        assert stats.num_batches == rounds * threads_n

    def test_merge_accumulates(self):
        total = BatchStats()
        part = BatchStats()
        part.record(3)
        part.record(5, failed=True)
        total.merge(part)
        total.merge(part)
        assert total.num_requests == 16
        assert total.num_batches == 4
        assert total.max_batch_size == 5
        assert total.num_failed_batches == 2


class TestMaskThroughBatcher:
    def _make(self, expected_channels, mask_input, calls):
        def fn(batch):
            calls.append(batch)
            return batch

        return MicroBatcher(fn, max_batch=4, max_wait_ms=1.0,
                            expected_channels=expected_channels,
                            mask_input=mask_input)

    def test_mask_is_concatenated_as_trailing_channel(self):
        calls = []
        window = np.random.default_rng(0).normal(size=(4, 5, 2))
        mask = np.ones((4, 5))
        mask[1, 2] = 0.0
        with self._make(3, True, calls) as batcher:
            result = batcher.predict(window, mask=mask, timeout=30)
        assert result.shape == (4, 5, 3)
        assert np.array_equal(result[..., :2], window)
        assert np.array_equal(result[..., 2], mask)

    def test_pre_concatenated_mask_window_is_accepted(self):
        calls = []
        window = np.ones((4, 5, 3))
        with self._make(3, True, calls) as batcher:
            assert batcher.predict(window, timeout=30).shape == (4, 5, 3)

    def test_missing_mask_channel_is_rejected_with_hint(self):
        calls = []
        with self._make(3, True, calls) as batcher:
            with pytest.raises(ValueError, match="mask"):
                batcher.submit(np.ones((4, 5, 2)))

    def test_mask_for_maskless_model_is_rejected(self):
        calls = []
        with self._make(2, False, calls) as batcher:
            with pytest.raises(ValueError, match="mask"):
                batcher.submit(np.ones((4, 5, 2)), mask=np.ones((4, 5)))

    def test_wrong_channel_width_is_rejected(self):
        calls = []
        with self._make(2, False, calls) as batcher:
            with pytest.raises(ValueError, match="channel"):
                batcher.submit(np.ones((4, 5, 7)))

    def test_wrong_mask_shape_is_rejected(self):
        calls = []
        with self._make(3, True, calls) as batcher:
            with pytest.raises(ValueError, match="mask"):
                batcher.submit(np.ones((4, 5, 2)), mask=np.ones((4, 4)))

    def test_for_service_validates_against_bundle_config(self, trained):
        """for_service() wires the service's scenario width into the batcher:
        the trained bundle is mask-less, so masks are rejected and the
        declared width is enforced."""
        _, _, data, bundle_path = trained
        service = ForecastService.from_checkpoint(bundle_path)
        batch_x, _ = next(iter(data.test_loader))
        assert service.expected_channels == batch_x.shape[-1]
        direct = service.predict(batch_x)
        with MicroBatcher.for_service(service, max_batch=4,
                                      max_wait_ms=5.0) as batcher:
            futures = [batcher.submit(window) for window in batch_x]
            results = np.stack([future.result(timeout=30) for future in futures])
            with pytest.raises(ValueError, match="mask"):
                batcher.submit(batch_x[0], mask=np.ones(batch_x[0].shape[:2]))
            wrong = np.ones(batch_x[0].shape[:2] + (batch_x.shape[-1] + 1,))
            with pytest.raises(ValueError, match="channel"):
                batcher.submit(wrong)
        assert np.allclose(results, direct)


class TestServiceCounterThreadSafety:
    def test_request_counter_survives_concurrent_predicts(self, trained):
        """Regression: ``self.num_requests += batch`` raced across the
        MicroBatcher worker and direct callers, losing requests."""
        model, _, data, _ = trained
        service = ForecastService(model, scaler=data.scaler)
        batch_x, _ = next(iter(data.test_loader))
        window = np.ascontiguousarray(batch_x[:1])
        rounds, threads_n = 20, 6

        def hammer():
            for _ in range(rounds):
                service.predict(window)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.num_requests == rounds * threads_n


class TestServeCLI:
    def test_synthetic_requests_roundtrip(self, trained, tmp_path, capsys):
        _, _, _, bundle_path = trained
        output = tmp_path / "predictions.npy"
        code = serve_main([str(bundle_path), "--requests", "6", "--max-batch", "3",
                           "--output", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "frozen-graph mode" in printed
        assert "served 6 requests" in printed
        predictions = np.load(output)
        assert predictions.shape[0] == 6

    def test_input_file_requests(self, trained, tmp_path, capsys):
        model, _, data, bundle_path = trained
        batch_x, _ = next(iter(data.test_loader))
        request_path = tmp_path / "requests.npy"
        np.save(request_path, batch_x)
        output = tmp_path / "out.npy"
        code = serve_main([str(bundle_path), "--input", str(request_path),
                           "--output", str(output)])
        assert code == 0
        service = ForecastService(model, scaler=data.scaler)
        assert np.allclose(np.load(output), service.predict(batch_x), atol=1e-6)

    def test_input_file_ignores_requests_flag(self, trained, tmp_path):
        """Regression: ``--input reqs.npy --requests 0`` used to exit even
        though --requests only sizes the synthetic workload."""
        _, _, data, bundle_path = trained
        batch_x, _ = next(iter(data.test_loader))
        request_path = tmp_path / "requests.npy"
        np.save(request_path, batch_x)
        output = tmp_path / "out.npy"
        code = serve_main([str(bundle_path), "--input", str(request_path),
                           "--requests", "0", "--output", str(output)])
        assert code == 0
        assert np.load(output).shape[0] == batch_x.shape[0]

    def test_synthetic_zero_requests_is_still_rejected(self, trained):
        _, _, _, bundle_path = trained
        with pytest.raises(SystemExit, match="--requests"):
            serve_main([str(bundle_path), "--requests", "0"])

    def test_plain_checkpoint_is_rejected(self, trained, tmp_path):
        """Non-bundle archives exit with a one-line error, not a traceback."""
        model, _, _, _ = trained
        plain = save_checkpoint(model, tmp_path / "plain")
        with pytest.raises(SystemExit, match="not a serving bundle") as excinfo:
            serve_main([str(plain)])
        assert str(excinfo.value).startswith("error: ")
        assert "\n" not in str(excinfo.value)