"""Tests for the multi-worker serving cluster.

Covers the two guarantees the cluster must never break:

* **Bit parity** — every worker rehydrates the same bundle, so a
  4-worker cluster answers batch-1 requests bit-identically to a
  single-process :class:`ForecastService` on the same bundle.
* **Determinism under faults** — a worker killed mid-batch, a cluster
  with no survivors, or a shutdown with requests in flight must resolve
  or fail every Future descriptively; nothing may hang.

Worker start-up goes through ``multiprocessing`` spawn, so the suite
keeps models tiny and reuses one module-scoped 4-worker cluster for the
non-destructive tests.
"""

import asyncio
import threading
from itertools import combinations

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.serve import ClusterError, ForecastService, ServingCluster
from repro.serve.__main__ import main as serve_main
from repro.utils import load_bundle, save_bundle
from repro.utils.checkpoint import rehydrate_model


def _different_index_set(frozen, num_nodes):
    """The first same-sized index set that differs from ``frozen``."""
    frozen = np.sort(np.asarray(frozen))
    for combo in combinations(range(num_nodes), frozen.size):
        candidate = np.asarray(combo, dtype=np.int64)
        if not np.array_equal(candidate, frozen):
            return candidate
    raise AssertionError("no alternative index set exists")


def _cold_service(bundle_data, index_set):
    """A cold-started single-process service frozen on ``index_set``."""
    model = rehydrate_model(bundle_data)
    model._index_set = np.asarray(index_set, dtype=np.int64).copy()
    return ForecastService(model)


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    """A frozen-graph SAGDFN bundle small enough for fast worker start-up."""
    config = SAGDFNConfig(
        num_nodes=6, history=4, horizon=3, embedding_dim=8,
        num_significant=4, top_k=3, hidden_size=10,
        num_heads=2, ffn_hidden=8, seed=0,
    )
    model = SAGDFN(config)
    model.refresh_graph(0)
    path = save_bundle(model, tmp_path_factory.mktemp("cluster") / "bundle")
    return path, config


@pytest.fixture(scope="module")
def windows(bundle):
    _, config = bundle
    rng = np.random.default_rng(7)
    return rng.normal(size=(12, config.history, config.num_nodes,
                            config.input_dim))


@pytest.fixture(scope="module")
def cluster4(bundle):
    path, _ = bundle
    with ServingCluster(path, workers=4, max_batch=4, max_wait_ms=1.0) as cluster:
        yield cluster


class TestClusterServing:
    def test_four_workers_match_single_process_bitwise(self, bundle, windows,
                                                       cluster4):
        """Batch-1 requests through the 4-worker cluster are bit-identical
        to ``service.predict`` on the same bundle (same batch size, same
        rehydrated replica — nothing on the path may perturb a ulp)."""
        path, _ = bundle
        service = ForecastService.from_checkpoint(path)
        for window in windows:
            served = cluster4.predict(window, timeout=60)
            reference = service.predict(window[None])[0]
            assert np.array_equal(served, reference)

    def test_concurrent_burst_is_served_in_order(self, bundle, windows,
                                                 cluster4):
        path, _ = bundle
        service = ForecastService.from_checkpoint(path)
        before = cluster4.stats.num_requests
        futures = [cluster4.submit(window) for window in windows]
        results = np.stack([future.result(timeout=60) for future in futures])
        reference = service.predict(windows)
        assert np.allclose(results, reference, atol=1e-9)
        assert cluster4.stats.num_requests - before == len(windows)

    def test_async_front_door_gathers_in_order(self, bundle, windows,
                                               cluster4):
        path, _ = bundle
        service = ForecastService.from_checkpoint(path)
        results = asyncio.run(cluster4.serve_async(windows))
        assert np.allclose(results, service.predict(windows), atol=1e-9)

    def test_burst_spreads_over_every_worker(self, cluster4, windows):
        threads = []

        def client(window):
            cluster4.predict(window, timeout=60)

        for window in windows:
            for _ in range(2):
                threads.append(threading.Thread(target=client, args=(window,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        per_worker = [stats.num_requests for stats in cluster4.worker_stats]
        assert all(count > 0 for count in per_worker)

    def test_mask_for_maskless_bundle_is_rejected(self, cluster4, windows):
        with pytest.raises(ValueError, match="mask"):
            cluster4.submit(windows[0], mask=np.ones(windows[0].shape[:2]))

    def test_wrong_channel_width_is_rejected(self, cluster4, windows):
        wrong = np.ones(windows[0].shape[:2] + (windows[0].shape[-1] + 3,))
        with pytest.raises(ValueError, match="channel"):
            cluster4.submit(wrong)

    def test_invalid_configuration(self, bundle):
        path, _ = bundle
        with pytest.raises(ValueError):
            ServingCluster(path, workers=0)
        with pytest.raises(ValueError):
            ServingCluster(path, workers=1, slots=0)


class TestClusterFaults:
    def test_worker_killed_mid_service_redispatches(self, bundle, windows):
        """SIGKILL one of two workers, then serve a burst: every request
        must still resolve (dead-worker batches re-dispatch to the live
        peer) and the cluster must record the death."""
        path, _ = bundle
        with ServingCluster(path, workers=2, max_batch=4, max_wait_ms=1.0,
                            request_timeout_s=30.0,
                            supervise=False) as cluster:
            service = ForecastService.from_checkpoint(path)
            cluster.predict(windows[0], timeout=60)  # warm both ends
            cluster._channels[0].process.kill()
            cluster._channels[0].process.join(10.0)
            futures = [cluster.submit(window) for window in windows]
            results = np.stack([future.result(timeout=60) for future in futures])
            assert np.allclose(results, service.predict(windows), atol=1e-9)
            assert cluster.alive_workers == 1
            # Later submits route straight to the survivor.
            assert np.array_equal(
                cluster.predict(windows[0], timeout=60),
                service.predict(windows[0][None])[0],
            )

    def test_no_surviving_worker_fails_futures_descriptively(self, bundle,
                                                             windows):
        path, _ = bundle
        with ServingCluster(path, workers=1, max_batch=4, max_wait_ms=1.0,
                            request_timeout_s=30.0,
                            supervise=False) as cluster:
            cluster.predict(windows[0], timeout=60)
            cluster._channels[0].process.kill()
            cluster._channels[0].process.join(10.0)
            future = cluster.submit(windows[0])
            with pytest.raises(ClusterError, match="no live worker"):
                future.result(timeout=60)
            # With the death recorded, submit itself now fails fast.
            with pytest.raises(ClusterError, match="no live workers"):
                cluster.submit(windows[0])

    def test_close_with_inflight_requests_resolves_everything(self, bundle,
                                                              windows):
        path, _ = bundle
        cluster = ServingCluster(path, workers=2, max_batch=4, max_wait_ms=1.0)
        futures = [cluster.submit(window) for window in windows]
        cluster.close()  # drains before stopping the workers
        for future in futures:
            assert future.done()
            assert future.result(timeout=1).shape[0] == windows.shape[1] - 1
        with pytest.raises(RuntimeError, match="closed"):
            cluster.submit(windows[0])

    def test_close_stops_workers_and_unlinks_shared_memory(self, bundle,
                                                           windows):
        from multiprocessing import shared_memory

        path, _ = bundle
        cluster = ServingCluster(path, workers=2, max_batch=4, max_wait_ms=1.0)
        names = [channel.request_shm.name for channel in cluster._channels]
        names += [channel.response_shm.name for channel in cluster._channels]
        processes = [channel.process for channel in cluster._channels]
        cluster.predict(windows[0], timeout=60)
        cluster.close()
        cluster.close()  # idempotent
        for process in processes:
            assert not process.is_alive()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestRingWraparound:
    def test_sustained_load_wraps_slots_without_reuse_while_unread(
            self, bundle, windows):
        """Serve far more requests than ``slots x max_batch`` through one
        worker and use the channel trace hook to prove the ring invariant:
        a slot is never re-dispatched while its previous response is still
        unread.  Sequential batch-1 requests stay bit-identical to the
        single-process service; the concurrent burst (which coalesces into
        larger micro-batches) stays within float64 round-off of it."""
        path, _ = bundle
        events = []
        with ServingCluster(path, workers=1, slots=2, max_batch=2,
                            max_wait_ms=0.5) as cluster:
            channel = cluster._channels[0]
            channel.trace = (
                lambda kind, seq, slot, batch: events.append((kind, seq, slot))
            )
            service = ForecastService.from_checkpoint(path)
            for window in windows:  # 12 sequential requests > 2 x 2 capacity
                served = cluster.predict(window, timeout=60)
                assert np.array_equal(served, service.predict(window[None])[0])
            futures = [cluster.submit(window) for window in windows]
            results = np.stack([future.result(timeout=60) for future in futures])
            assert np.allclose(results, service.predict(windows), atol=1e-9)

        outstanding = {}
        dispatches_per_slot = {}
        for kind, seq, slot in events:
            if kind == "dispatch":
                assert outstanding.get(slot) is None, (
                    f"slot {slot} re-dispatched while seq "
                    f"{outstanding[slot]} was still unread"
                )
                outstanding[slot] = seq
                dispatches_per_slot[slot] = dispatches_per_slot.get(slot, 0) + 1
            else:
                assert kind == "complete"
                assert outstanding.get(slot) == seq
                outstanding[slot] = None
        assert sum(dispatches_per_slot.values()) >= len(windows)
        assert max(dispatches_per_slot.values()) > 1  # the ring really wrapped


class TestClusterHotSwap:
    def test_swap_broadcast_matches_cold_start_bitwise(self, bundle, windows):
        path, config = bundle
        bundle_data = load_bundle(path)
        fresh = _different_index_set(bundle_data.index_set, config.num_nodes)
        with ServingCluster(path, workers=2, max_batch=4,
                            max_wait_ms=1.0) as cluster:
            before = cluster.predict(windows[0], timeout=60)
            assert cluster.generation == 0
            assert cluster.swap_index_set(fresh) == 1
            assert cluster.generation == 1
            assert np.array_equal(cluster.index_set, fresh)
            assert cluster.alive_workers == 2
            cold = _cold_service(bundle_data, fresh)
            for window in windows[:4]:
                assert np.array_equal(
                    cluster.predict(window, timeout=60),
                    cold.predict(window[None])[0],
                )
            assert not np.array_equal(
                cluster.predict(windows[0], timeout=60), before
            )

    def test_inflight_requests_during_swap_complete_on_one_generation(
            self, bundle, windows):
        """Clients hammering a 2-worker cluster across three hot-swaps:
        every request resolves without error, and each answer is bitwise
        one of the two per-generation cold-start references (``max_batch=1``
        keeps every request a batch of one, so bitwise comparison holds)."""
        path, config = bundle
        bundle_data = load_bundle(path)
        # keep the original order — the frozen kernel is order-significant
        frozen = np.asarray(bundle_data.index_set, dtype=np.int64)
        fresh = _different_index_set(frozen, config.num_nodes)
        window = windows[0]
        ref_frozen = _cold_service(bundle_data, frozen).predict(window[None])[0]
        ref_fresh = _cold_service(bundle_data, fresh).predict(window[None])[0]

        with ServingCluster(path, workers=2, max_batch=1,
                            max_wait_ms=0.5) as cluster:
            outputs, errors = [], []
            stop = threading.Event()

            def client():
                try:
                    while not stop.is_set() and len(outputs) < 200:
                        outputs.append(cluster.predict(window, timeout=60))
                except Exception as exc:  # noqa: BLE001 - asserted empty
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(3)]
            for thread in threads:
                thread.start()
            for index_set in (fresh, frozen, fresh):
                cluster.swap_index_set(index_set)
            stop.set()
            for thread in threads:
                thread.join()

            assert not errors
            assert outputs
            assert cluster.generation == 3
            assert cluster.alive_workers == 2
            for output in outputs:
                assert (np.array_equal(output, ref_frozen)
                        or np.array_equal(output, ref_fresh))

    def test_swap_rejected_after_close(self, bundle):
        path, config = bundle
        cluster = ServingCluster(path, workers=1, max_batch=2, max_wait_ms=1.0)
        fresh = _different_index_set(cluster.index_set, config.num_nodes)
        cluster.close()
        with pytest.raises(RuntimeError, match="closed"):
            cluster.swap_index_set(fresh)


class TestClusterCLI:
    def test_workers_flag_routes_through_cluster(self, bundle, tmp_path,
                                                 capsys):
        path, _ = bundle
        output = tmp_path / "predictions.npy"
        code = serve_main([str(path), "--workers", "2", "--requests", "6",
                           "--max-batch", "3", "--output", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "2-worker cluster" in printed
        assert "served 6 requests" in printed
        assert np.load(output).shape[0] == 6

    def test_cluster_cli_matches_single_process_cli(self, bundle, tmp_path):
        path, _ = bundle
        single = tmp_path / "single.npy"
        clustered = tmp_path / "clustered.npy"
        assert serve_main([str(path), "--requests", "5", "--seed", "3",
                           "--output", str(single)]) == 0
        assert serve_main([str(path), "--workers", "2", "--requests", "5",
                           "--seed", "3", "--output", str(clustered)]) == 0
        assert np.allclose(np.load(single), np.load(clustered), atol=1e-9)

    def test_invalid_workers_flag(self, bundle):
        path, _ = bundle
        with pytest.raises(SystemExit, match="--workers"):
            serve_main([str(path), "--workers", "0"])
        with pytest.raises(SystemExit, match="--no-freeze"):
            serve_main([str(path), "--workers", "2", "--no-freeze"])
