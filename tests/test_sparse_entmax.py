"""Tests for the α-entmax family: exactness, sparsity, gradients, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import (
    alpha_entmax,
    alpha_entmax_np,
    entmax15_np,
    entmax_support_size,
    softmax,
    softmax_np,
    sparsemax,
    sparsemax_np,
)
from repro.tensor import Tensor, check_gradients


class TestForwardCorrectness:
    def test_softmax_matches_reference(self, rng):
        z = rng.normal(size=(4, 7))
        expected = np.exp(z) / np.exp(z).sum(axis=-1, keepdims=True)
        assert np.allclose(softmax_np(z), expected)

    @pytest.mark.parametrize("alpha", [1.0, 1.2, 1.5, 1.8, 2.0, 2.5])
    def test_outputs_are_probability_vectors(self, rng, alpha):
        z = rng.normal(size=(5, 9)) * 3.0
        p = alpha_entmax_np(z, alpha=alpha)
        assert np.all(p >= -1e-12)
        assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-6)

    def test_alpha_one_equals_softmax(self, rng):
        z = rng.normal(size=(3, 6))
        assert np.allclose(alpha_entmax_np(z, 1.0), softmax_np(z))

    def test_alpha_two_equals_sparsemax(self, rng):
        z = rng.normal(size=(3, 6))
        assert np.allclose(alpha_entmax_np(z, 2.0), sparsemax_np(z), atol=1e-9)

    def test_bisection_matches_exact_entmax15(self, rng):
        z = rng.normal(size=(4, 8)) * 2.0
        from repro.sparse.entmax import _entmax_bisect_np

        assert np.allclose(_entmax_bisect_np(z, 1.5), entmax15_np(z), atol=1e-5)

    def test_sparsemax_on_dominant_logit_is_one_hot(self):
        z = np.array([[10.0, 0.0, 0.0]])
        p = sparsemax_np(z)
        assert np.allclose(p, [[1.0, 0.0, 0.0]])

    def test_uniform_input_gives_uniform_output(self):
        z = np.zeros((2, 5))
        for alpha in (1.0, 1.5, 2.0):
            assert np.allclose(alpha_entmax_np(z, alpha), 0.2)

    def test_shift_invariance(self, rng):
        z = rng.normal(size=(3, 6))
        for alpha in (1.0, 1.5, 2.0):
            assert np.allclose(alpha_entmax_np(z, alpha), alpha_entmax_np(z + 7.3, alpha), atol=1e-6)

    def test_axis_argument(self, rng):
        z = rng.normal(size=(4, 5))
        p = alpha_entmax_np(z, 1.5, axis=0)
        assert np.allclose(p.sum(axis=0), 1.0, atol=1e-6)

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            alpha_entmax_np(np.zeros(3), alpha=0.5)


class TestSparsity:
    def test_sparsity_increases_with_alpha(self, rng):
        z = rng.normal(size=(20, 30)) * 2.0
        support_soft = entmax_support_size(alpha_entmax_np(z, 1.0)).mean()
        support_15 = entmax_support_size(alpha_entmax_np(z, 1.5)).mean()
        support_sparse = entmax_support_size(alpha_entmax_np(z, 2.0)).mean()
        assert support_soft >= support_15 >= support_sparse
        assert support_sparse < 30  # sparsemax actually zeroes entries

    def test_softmax_is_fully_dense(self, rng):
        z = rng.normal(size=(5, 8))
        assert np.all(entmax_support_size(alpha_entmax_np(z, 1.0)) == 8)

    def test_entmax_zeroes_low_scores(self):
        z = np.array([[5.0, 4.9, -5.0, -6.0]])
        p = alpha_entmax_np(z, 1.5)
        assert p[0, 2] == 0.0 and p[0, 3] == 0.0
        assert p[0, 0] > 0.0 and p[0, 1] > 0.0


class TestGradients:
    @pytest.mark.parametrize("alpha", [1.0, 1.5, 2.0])
    def test_gradients_match_finite_differences(self, rng, alpha):
        z = Tensor(rng.normal(size=(3, 6)), requires_grad=True)
        multiplier = Tensor(rng.normal(size=(3, 6)))
        assert check_gradients(
            lambda x: alpha_entmax(x, alpha=alpha) * multiplier,
            [z],
            atol=5e-3,
            rtol=5e-2,
            epsilon=1e-5,
        )

    def test_gradient_is_zero_off_support(self, rng):
        z = Tensor(np.array([[5.0, 4.5, -10.0]]), requires_grad=True)
        out = sparsemax(z)
        out.sum().backward()
        # The third coordinate is outside the support: moving it slightly cannot
        # change the output, so its gradient must be exactly zero.
        assert z.grad[0, 2] == pytest.approx(0.0)

    def test_softmax_tensor_wrapper(self, rng):
        z = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        p = softmax(z)
        assert np.allclose(p.data.sum(axis=-1), 1.0)
        p.sum().backward()
        # Sum of a probability vector is constant, so gradients are ~0.
        assert np.allclose(z.grad, 0.0, atol=1e-8)


finite = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 5), st.integers(2, 8)), elements=finite),
       st.sampled_from([1.0, 1.25, 1.5, 1.75, 2.0]))
def test_property_valid_distribution(z, alpha):
    p = alpha_entmax_np(z, alpha=alpha)
    assert np.all(p >= -1e-9)
    assert np.allclose(p.sum(axis=-1), 1.0, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(2, 6)), elements=finite))
def test_property_ordering_preserved(z):
    """Larger logits never receive smaller probability."""
    p = alpha_entmax_np(z, alpha=1.5)
    for row_z, row_p in zip(z, p):
        order = np.argsort(row_z)
        sorted_p = row_p[order]
        assert np.all(np.diff(sorted_p) >= -1e-8)
