"""Streaming evaluation: batch-accumulated metrics vs the concatenate-everything path."""

import numpy as np
import pytest

from repro.baselines import build_baseline
from repro.core import Trainer
from repro.data import DataLoader, MultivariateTimeSeries, SlidingWindowDataset
from repro.evaluation import StreamingMetrics, collect_predictions, evaluate_neural
from repro.metrics import horizon_metrics, metrics_dict
from repro.nn.loss import masked_mae, masked_mape, masked_mse
from repro.optim import Adam
from repro.tensor import Tensor


@pytest.fixture
def batches(rng):
    """Five unequal batches of (prediction, target) with missing entries."""
    out = []
    for size in (4, 7, 1, 5, 3):
        target = np.abs(rng.normal(loc=40.0, scale=8.0, size=(size, 6, 9, 1)))
        target[rng.random(target.shape) < 0.08] = 0.0  # missing readings
        prediction = target + rng.normal(scale=2.0, size=target.shape)
        out.append((prediction, target))
    return out


class TestStreamingMetrics:
    def test_matches_concatenated_masked_losses(self, batches):
        stream = StreamingMetrics(null_value=0.0)
        for prediction, target in batches:
            stream.update(prediction, target)
        result = stream.compute()

        prediction = Tensor(np.concatenate([p for p, _ in batches]))
        target = Tensor(np.concatenate([t for _, t in batches]))
        assert result["mae"] == pytest.approx(
            float(masked_mae(prediction, target, null_value=0.0).data), rel=1e-12
        )
        assert result["rmse"] == pytest.approx(
            float(np.sqrt(masked_mse(prediction, target, null_value=0.0).data)), rel=1e-12
        )
        assert result["mape"] == pytest.approx(
            float(masked_mape(prediction, target, null_value=0.0).data), rel=1e-12
        )

    def test_matches_array_metrics_dict(self, batches):
        stream = StreamingMetrics(null_value=0.0)
        for prediction, target in batches:
            stream.update(prediction, target)
        concat = metrics_dict(
            np.concatenate([p for p, _ in batches]),
            np.concatenate([t for _, t in batches]),
            null_value=0.0,
        )
        for key, value in stream.compute().items():
            assert value == pytest.approx(concat[key], rel=1e-12)

    def test_per_horizon_matches_concatenated(self, batches):
        stream = StreamingMetrics(null_value=0.0)
        for prediction, target in batches:
            stream.update(prediction, target)
        reference = horizon_metrics(
            np.concatenate([p for p, _ in batches]),
            np.concatenate([t for _, t in batches]),
            horizons=(1, 3, 6),
            null_value=0.0,
        )
        for streamed, ref in zip(stream.horizon_metrics((1, 3, 6)), reference):
            assert streamed.horizon == ref.horizon
            assert streamed.mae == pytest.approx(ref.mae, rel=1e-12)
            assert streamed.rmse == pytest.approx(ref.rmse, rel=1e-12)
            assert streamed.mape == pytest.approx(ref.mape, rel=1e-12)

    def test_nan_null_value(self, rng):
        target = rng.normal(size=(3, 4, 5, 1))
        target[0, 0, 0, 0] = np.nan
        prediction = np.nan_to_num(target) + 1.0
        stream = StreamingMetrics(null_value=float("nan"))
        stream.update(prediction, target)
        assert stream.compute()["mae"] == pytest.approx(1.0)

    def test_no_masking(self, rng):
        target = np.zeros((2, 3, 4, 1))
        prediction = target + 2.0
        stream = StreamingMetrics(null_value=None)
        stream.update(prediction, target)
        assert stream.compute()["mae"] == pytest.approx(2.0)
        assert stream.compute()["rmse"] == pytest.approx(2.0)

    def test_empty_stream_is_nan(self):
        metrics = StreamingMetrics().compute()
        assert all(np.isnan(value) for value in metrics.values())

    def test_all_masked_is_nan(self):
        stream = StreamingMetrics(null_value=0.0)
        stream.update(np.ones((2, 3, 4, 1)), np.zeros((2, 3, 4, 1)))
        assert all(np.isnan(value) for value in stream.compute().values())

    def test_shape_mismatch_and_midstream_change_raise(self, rng):
        stream = StreamingMetrics()
        with pytest.raises(ValueError):
            stream.update(np.ones((2, 3, 4, 1)), np.ones((2, 3, 5, 1)))
        stream.update(np.ones((2, 3, 4, 1)), np.ones((2, 3, 4, 1)))
        with pytest.raises(ValueError):
            stream.update(np.ones((2, 5, 4, 1)), np.ones((2, 5, 4, 1)))

    def test_counters(self, batches):
        stream = StreamingMetrics()
        for prediction, target in batches:
            stream.update(prediction, target)
        assert stream.num_batches == len(batches)
        assert stream.num_samples == sum(p.shape[0] for p, _ in batches)


@pytest.fixture
def model_and_loader(rng):
    values = np.abs(rng.normal(loc=30.0, scale=5.0, size=(120, 6, 1)))
    values[rng.random(values.shape) < 0.05] = 0.0
    series = MultivariateTimeSeries(values, step_minutes=5)
    dataset = SlidingWindowDataset(series, history=5, horizon=4)
    loader = DataLoader(dataset, batch_size=16)  # multiple batches, uneven tail
    model = build_baseline("GRU", 6, 1, 5, 4, hidden_size=8)
    return model, loader


class TestStreamingEvaluationPaths:
    def test_trainer_evaluate_matches_concat_implementation(self, model_and_loader):
        model, loader = model_and_loader
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
        streamed = trainer.evaluate(loader)

        # The seed implementation: concatenate every prediction, then one
        # masked-metric call over the full arrays.
        predictions, targets = collect_predictions(model, loader)
        prediction, target = Tensor(predictions), Tensor(targets)
        assert streamed["mae"] == pytest.approx(
            float(masked_mae(prediction, target, null_value=0.0).data), rel=1e-9
        )
        assert streamed["rmse"] == pytest.approx(
            float(np.sqrt(masked_mse(prediction, target, null_value=0.0).data)), rel=1e-9
        )
        assert streamed["mape"] == pytest.approx(
            float(masked_mape(prediction, target, null_value=0.0).data), rel=1e-9
        )

    def test_evaluate_neural_matches_concat_horizons(self, model_and_loader):
        model, loader = model_and_loader
        streamed = evaluate_neural(model, loader, horizons=(1, 2, 4))
        predictions, targets = collect_predictions(model, loader)
        reference = horizon_metrics(predictions, targets, horizons=(1, 2, 4))
        for got, ref in zip(streamed, reference):
            assert got.mae == pytest.approx(ref.mae, rel=1e-9)
            assert got.rmse == pytest.approx(ref.rmse, rel=1e-9)
            assert got.mape == pytest.approx(ref.mape, rel=1e-9)

    def test_evaluate_neural_restores_train_mode(self, model_and_loader):
        model, loader = model_and_loader
        model.train()
        evaluate_neural(model, loader, horizons=(1,))
        assert model.training
        model.eval()
        evaluate_neural(model, loader, horizons=(1,))
        assert not model.training