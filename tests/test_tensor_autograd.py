"""Backward-pass correctness: analytic gradients vs central finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, concat, maximum, minimum, stack, where


def _tensor(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmeticGradients:
    def test_add_sub(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 3, 4)
        assert check_gradients(lambda x, y: x + y - 0.5 * y, [a, b])

    def test_mul_div(self, rng):
        a, b = _tensor(rng, 2, 3), Tensor(rng.normal(size=(2, 3)) + 3.0, requires_grad=True)
        assert check_gradients(lambda x, y: (x * y) / (y + 1.0), [a, b])

    def test_broadcast_add(self, rng):
        a, b = _tensor(rng, 4, 5), _tensor(rng, 5)
        assert check_gradients(lambda x, y: x + y, [a, b])

    def test_broadcast_mul_row_and_column(self, rng):
        a = _tensor(rng, 3, 4)
        row = _tensor(rng, 1, 4)
        column = _tensor(rng, 3, 1)
        assert check_gradients(lambda x, r, c: x * r * c, [a, row, column])

    def test_power(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3, 3))) + 0.5, requires_grad=True)
        assert check_gradients(lambda x: x**3, [a])

    def test_neg(self, rng):
        a = _tensor(rng, 2, 2)
        assert check_gradients(lambda x: -x, [a])

    def test_scalar_mix(self, rng):
        a = _tensor(rng, 3)
        assert check_gradients(lambda x: 2.0 * x + 1.0 - x / 4.0, [a])


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 4, 2)
        assert check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_matmul_batched_left(self, rng):
        a, b = _tensor(rng, 5, 3, 4), _tensor(rng, 4, 2)
        assert check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_matmul_batched_both(self, rng):
        a, b = _tensor(rng, 2, 3, 4), _tensor(rng, 2, 4, 5)
        assert check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_matmul_broadcast_batch(self, rng):
        a, b = _tensor(rng, 3, 4), _tensor(rng, 6, 4, 2)
        assert check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_matmul_vector_cases(self, rng):
        a, b = _tensor(rng, 4), _tensor(rng, 4)
        assert check_gradients(lambda x, y: x.matmul(y), [a, b])
        m, v = _tensor(rng, 3, 4), _tensor(rng, 4)
        assert check_gradients(lambda x, y: x.matmul(y), [m, v])


class TestElementwiseGradients:
    def test_exp_log(self, rng):
        a = Tensor(np.abs(rng.normal(size=(3, 3))) + 0.5, requires_grad=True)
        assert check_gradients(lambda x: (x.exp() + x.log()), [a])

    def test_tanh_sigmoid(self, rng):
        a = _tensor(rng, 4, 4)
        assert check_gradients(lambda x: x.tanh() + x.sigmoid(), [a])

    def test_sqrt(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
        assert check_gradients(lambda x: x.sqrt(), [a])

    def test_relu_away_from_kink(self, rng):
        data = rng.normal(size=(4, 4))
        data[np.abs(data) < 0.1] = 0.5
        a = Tensor(data, requires_grad=True)
        assert check_gradients(lambda x: x.relu(), [a])

    def test_abs_away_from_zero(self, rng):
        data = rng.normal(size=(4,))
        data[np.abs(data) < 0.1] = 1.0
        a = Tensor(data, requires_grad=True)
        assert check_gradients(lambda x: x.abs(), [a])

    def test_clip_interior(self, rng):
        a = Tensor(rng.uniform(-0.5, 0.5, size=(3, 3)), requires_grad=True)
        assert check_gradients(lambda x: x.clip(-1.0, 1.0), [a])


class TestReductionShapeGradients:
    def test_sum_all_and_axis(self, rng):
        a = _tensor(rng, 3, 4, 2)
        assert check_gradients(lambda x: x.sum(), [a])
        assert check_gradients(lambda x: x.sum(axis=1), [a])
        assert check_gradients(lambda x: x.sum(axis=(0, 2), keepdims=True), [a])

    def test_mean_and_var(self, rng):
        a = _tensor(rng, 4, 3)
        assert check_gradients(lambda x: x.mean(axis=0), [a])
        assert check_gradients(lambda x: x.var(axis=1), [a], atol=1e-4)

    def test_max(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float), requires_grad=True)
        assert check_gradients(lambda x: x.max(axis=1), [a])

    def test_reshape_transpose(self, rng):
        a = _tensor(rng, 2, 3, 4)
        assert check_gradients(lambda x: x.reshape(6, 4).tanh(), [a])
        assert check_gradients(lambda x: x.transpose(2, 0, 1), [a])

    def test_squeeze_unsqueeze_broadcast(self, rng):
        a = _tensor(rng, 2, 1, 3)
        assert check_gradients(lambda x: x.squeeze(1).unsqueeze(0), [a])
        b = _tensor(rng, 1, 4)
        assert check_gradients(lambda x: x.broadcast_to((3, 4)) * 2.0, [b])

    def test_repeat_and_pad(self, rng):
        a = _tensor(rng, 2, 3)
        assert check_gradients(lambda x: x.repeat(2, axis=1), [a])
        assert check_gradients(lambda x: x.pad(((1, 1), (0, 2))), [a])

    def test_getitem_gradients(self, rng):
        a = _tensor(rng, 5, 3)
        assert check_gradients(lambda x: x[1:4], [a])
        indices = np.array([0, 2, 2, 4])
        assert check_gradients(lambda x: x[indices] * 3.0, [a])
        b = _tensor(rng, 2, 5, 3)
        assert check_gradients(lambda x: x[..., np.array([0, 2, 2]), :], [b])


class TestFreeFunctionGradients:
    def test_concat(self, rng):
        a, b = _tensor(rng, 2, 3), _tensor(rng, 2, 2)
        assert check_gradients(lambda x, y: concat([x, y], axis=1).tanh(), [a, b])

    def test_stack(self, rng):
        a, b = _tensor(rng, 3), _tensor(rng, 3)
        assert check_gradients(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_where(self, rng):
        condition = rng.random((3, 3)) > 0.5
        a, b = _tensor(rng, 3, 3), _tensor(rng, 3, 3)
        assert check_gradients(lambda x, y: where(condition, x, y), [a, b])

    def test_maximum_minimum(self, rng):
        a = Tensor(rng.normal(size=(4,)) + 2.0, requires_grad=True)
        b = Tensor(rng.normal(size=(4,)) - 2.0, requires_grad=True)
        assert check_gradients(lambda x, y: maximum(x, y) + minimum(x, y), [a, b])


class TestGraphMechanics:
    def test_gradient_accumulates_over_reuse(self, rng):
        a = Tensor([2.0], requires_grad=True)
        out = a * a + a
        out.backward()
        assert a.grad[0] == pytest.approx(2 * 2.0 + 1.0)

    def test_diamond_graph(self, rng):
        a = Tensor([3.0], requires_grad=True)
        left = a * 2.0
        right = a * 4.0
        (left + right).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_backward_twice_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        assert a.grad[0] == pytest.approx(4.0)

    def test_zero_grad_resets(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 3.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_non_scalar_backward_with_explicit_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = a * 3.0
        out.backward(np.ones((2, 2)))
        assert np.allclose(a.grad, 3.0)

    def test_no_grad_flow_through_detached(self):
        a = Tensor([2.0], requires_grad=True)
        detached = a.detach()
        out = detached * 5.0
        assert not out.requires_grad
