"""Tests for the no_grad context manager and gradient-recording state."""

import numpy as np

from repro.tensor import Tensor, is_grad_enabled, no_grad


def test_grad_enabled_by_default():
    assert is_grad_enabled()


def test_no_grad_disables_and_restores():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_nested():
    with no_grad():
        with no_grad():
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_restores_after_exception():
    try:
        with no_grad():
            raise ValueError("boom")
    except ValueError:
        pass
    assert is_grad_enabled()


def test_tensor_created_inside_no_grad_ignores_flag():
    with no_grad():
        tensor = Tensor([1.0], requires_grad=True)
    assert not tensor.requires_grad


def test_operations_inside_no_grad_have_no_parents():
    x = Tensor([2.0], requires_grad=True)
    with no_grad():
        y = x * 3.0
    assert y._parents == ()
    assert y._backward is None


def test_no_grad_as_decorator():
    @no_grad()
    def evaluate(tensor):
        return tensor * 2.0

    result = evaluate(Tensor([1.0], requires_grad=True))
    assert not result.requires_grad


def test_graph_recording_resumes_after_no_grad():
    x = Tensor([2.0], requires_grad=True)
    with no_grad():
        _ = x * 3.0
    y = x * 4.0
    y.backward()
    assert np.allclose(x.grad, [4.0])
