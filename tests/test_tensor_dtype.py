"""Tests for the engine-wide floating-point precision policy."""

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.data.scalers import MinMaxScaler, StandardScaler
from repro.nn import Linear, init
from repro.nn.loss import masked_mae
from repro.nn.module import Parameter
from repro.sparse import alpha_entmax_np
from repro.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)


@pytest.fixture(autouse=True)
def _restore_policy():
    """Never leak a modified policy into other tests."""
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestPolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_set_default_dtype(self):
        set_default_dtype("float32")
        assert get_default_dtype() == np.float32
        assert Tensor([1.0]).dtype == np.float32
        assert Parameter(np.zeros(3)).dtype == np.float32

    def test_context_manager_scopes_and_restores(self):
        with default_dtype(np.float32):
            assert Tensor([1.0]).dtype == np.float32
            with default_dtype("float64"):
                assert Tensor([1.0]).dtype == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            default_dtype("int32")

    def test_explicit_dtype_overrides_policy(self):
        tensor = Tensor([1.0], dtype=np.float32)
        assert tensor.dtype == np.float32

    def test_operations_follow_operands(self):
        with default_dtype(np.float32):
            a = Tensor(np.ones(4), requires_grad=True)
            out = ((a * 2.0 + 1.0).relu()).sum()
            assert out.dtype == np.float32
            out.backward()
            assert a.grad.dtype == np.float32

    def test_detach_and_copy_preserve_dtype(self):
        tensor = Tensor(np.ones(3), dtype=np.float32)
        with default_dtype(np.float64):
            assert tensor.detach().dtype == np.float32
            assert tensor.copy().dtype == np.float32

    def test_astype_is_differentiable(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = a.astype(np.float32).sum()
        assert out.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float64
        np.testing.assert_array_equal(a.grad, np.ones(3))


class TestThreadedThroughComponents:
    def test_initializers_follow_policy(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            assert init.xavier_uniform((3, 4), rng).dtype == np.float32
            assert init.kaiming_uniform((3, 4), rng).dtype == np.float32
            assert init.zeros((2,)).dtype == np.float32
            assert init.ones((2,)).dtype == np.float32
        assert init.xavier_normal((3, 4), rng).dtype == np.float64
        assert init.uniform((3,), rng, dtype=np.float32).dtype == np.float32

    def test_linear_parameters_follow_policy(self):
        with default_dtype(np.float32):
            layer = Linear(4, 3, seed=0)
            assert layer.weight.dtype == np.float32
            assert layer.bias.dtype == np.float32
            out = layer(Tensor(np.ones((2, 4))))
            assert out.dtype == np.float32

    def test_scalers_follow_policy(self):
        values = np.arange(20.0)
        scaler = StandardScaler().fit(values)
        minmax = MinMaxScaler().fit(values)
        with default_dtype(np.float32):
            assert scaler.transform(values).dtype == np.float32
            assert scaler.inverse_transform(values).dtype == np.float32
            assert minmax.transform(values).dtype == np.float32
        assert scaler.transform(values).dtype == np.float64

    def test_entmax_preserves_floating_dtype(self):
        z = np.random.default_rng(0).normal(size=(5, 7)).astype(np.float32)
        for alpha in (1.0, 1.5, 2.0, 1.3):
            out = alpha_entmax_np(z, alpha=alpha)
            assert out.dtype == np.float32, alpha
            np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_module_to_casts_parameters(self):
        layer = Linear(4, 3, seed=0)
        layer.to(np.float32)
        assert layer.weight.dtype == np.float32
        assert layer.bias.dtype == np.float32
        with pytest.raises(ValueError):
            layer.to(np.int32)

    def test_module_to_casts_tensor_and_ndarray_buffers(self):
        """Non-parameter buffers (e.g. a baseline's fixed support) must follow,
        or the first matmul against them promotes the forward back to float64."""
        from repro.nn.module import Module

        class WithBuffers(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(3, 3, seed=0)
                self.support = Tensor(np.eye(3))
                self.stats = np.zeros(3)
                self.index = np.arange(3)  # integer buffer must stay integer

            def forward(self, x):
                return self.layer(x).matmul(self.support)

        model = WithBuffers().to(np.float32)
        assert model.support.dtype == np.float32
        assert model.stats.dtype == np.float32
        assert model.index.dtype == np.int64
        out = model(Tensor(np.ones((2, 3)), dtype=np.float32))
        assert out.dtype == np.float32

    def test_scalar_operands_follow_tensor_dtype(self):
        """Python-scalar arithmetic must not promote a float32 graph to the
        float64 policy default (the `1.0 / x` degree-normalisation pattern)."""
        x = Tensor(np.ones(4), dtype=np.float32, requires_grad=True)
        assert (x + 1.0).dtype == np.float32
        assert (2.0 - x).dtype == np.float32
        assert (x * 0.5).dtype == np.float32
        assert (1.0 / (x + 1.0)).dtype == np.float32

    def test_optimizer_state_follows_module_to(self):
        """Stale float64 Adam/SGD buffers must not promote a float32-cast
        model back to float64 on the first step."""
        from repro.optim import SGD
        from repro.optim.adam import Adam

        for make_optimizer in (lambda ps: Adam(ps, lr=0.01), lambda ps: SGD(ps, lr=0.01, momentum=0.5)):
            layer = Linear(4, 3, seed=0)
            optimizer = make_optimizer(layer.parameters())
            layer.to(np.float32)
            layer(Tensor(np.ones((2, 4)), dtype=np.float32)).sum().backward()
            optimizer.step()
            assert layer.weight.dtype == np.float32
            assert layer.bias.dtype == np.float32

    def test_baseline_to_float32_runs_float32(self):
        """A baseline with Tensor buffers (DCRNN's support) and recurrent
        initial states must run float32 end-to-end after Module.to()."""
        from repro.baselines import build_baseline

        adjacency = np.eye(8) + np.eye(8, k=1)
        model = build_baseline(
            "DCRNN", num_nodes=8, input_dim=2, history=4, horizon=4, adjacency=adjacency
        )
        model.to(np.float32)
        assert model.support.dtype == np.float32
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 8, 2)), dtype=np.float32)
        assert model(x).dtype == np.float32


def _tiny_model_and_batch(dtype_name: str):
    with default_dtype(dtype_name):
        config = SAGDFNConfig(
            num_nodes=16, history=4, horizon=4, embedding_dim=6, num_significant=5,
            top_k=4, hidden_size=8, num_heads=2, ffn_hidden=6, seed=0,
        )
        model = SAGDFN(config)
        model.refresh_graph(0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4, 16, config.input_dim))
        y = np.abs(rng.normal(size=(3, 4, 16, 1))) + 1.0
        prediction = model(Tensor(x))
        loss = masked_mae(prediction, Tensor(y), null_value=0.0)
        loss.backward()
        grad_norm = float(
            np.sqrt(sum((p.grad**2).sum() for p in model.parameters() if p.grad is not None))
        )
    return float(loss.data), prediction.data.astype(np.float64), grad_norm


class TestFloat32EndToEnd:
    def test_full_model_matches_float64_within_1e_3(self):
        """The acceptance bar: SAGDFN forward+backward in float32 tracks float64."""
        loss64, pred64, grad64 = _tiny_model_and_batch("float64")
        loss32, pred32, grad32 = _tiny_model_and_batch("float32")
        assert abs(loss64 - loss32) < 1e-3
        np.testing.assert_allclose(pred32, pred64, atol=1e-3, rtol=0)
        assert abs(grad64 - grad32) / max(grad64, 1e-12) < 1e-3

    def test_float32_training_stays_float32(self):
        with default_dtype("float32"):
            config = SAGDFNConfig(
                num_nodes=12, history=3, horizon=3, embedding_dim=4, num_significant=4,
                top_k=3, hidden_size=6, num_heads=1, ffn_hidden=4, seed=0,
            )
            model = SAGDFN(config)
            model.refresh_graph(0)
            x = np.random.default_rng(0).normal(size=(2, 3, 12, config.input_dim))
            prediction = model(Tensor(x))
            assert prediction.dtype == np.float32
            assert all(p.dtype == np.float32 for p in model.parameters())
