"""Forward-pass behaviour of the Tensor class: shapes, values, broadcasting, errors."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, maximum, minimum, stack, where


class TestConstruction:
    def test_from_list(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.dtype == np.float64

    def test_from_scalar(self):
        tensor = Tensor(3.5)
        assert tensor.shape == ()
        assert tensor.item() == pytest.approx(3.5)

    def test_from_tensor_copies_reference_data(self):
        source = Tensor([1.0, 2.0])
        clone = Tensor(source)
        assert np.allclose(clone.data, source.data)

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_repr_contains_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_detach_drops_grad_flag(self):
        tensor = Tensor([1.0], requires_grad=True)
        assert not tensor.detach().requires_grad

    def test_copy_is_independent(self):
        tensor = Tensor([1.0, 2.0])
        duplicate = tensor.copy()
        duplicate.data[0] = 99.0
        assert tensor.data[0] == 1.0

    def test_len_and_size(self):
        tensor = Tensor(np.zeros((4, 3)))
        assert len(tensor) == 4
        assert tensor.size == 12
        assert tensor.ndim == 2


class TestArithmetic:
    def test_add_broadcasts(self):
        result = Tensor(np.ones((2, 3))) + Tensor(np.arange(3.0))
        assert np.allclose(result.data, [[1, 2, 3], [1, 2, 3]])

    def test_radd_with_scalar(self):
        result = 2.0 + Tensor([1.0, 2.0])
        assert np.allclose(result.data, [3.0, 4.0])

    def test_subtract_and_rsub(self):
        assert np.allclose((Tensor([5.0]) - 2.0).data, [3.0])
        assert np.allclose((2.0 - Tensor([5.0])).data, [-3.0])

    def test_multiply_and_divide(self):
        a = Tensor([2.0, 4.0])
        assert np.allclose((a * 3.0).data, [6.0, 12.0])
        assert np.allclose((a / 2.0).data, [1.0, 2.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])

    def test_negation_and_power(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2.0, 3.0])
        assert np.allclose((a**2).data, [4.0, 9.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)

    def test_matmul_batched(self):
        a = Tensor(np.random.default_rng(0).normal(size=(5, 2, 3)))
        b = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        assert (a @ b).shape == (5, 2, 4)

    def test_comparisons_return_arrays(self):
        a = Tensor([1.0, 5.0])
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 1.0).tolist() == [True, False]


class TestElementwise:
    def test_exp_log_roundtrip(self):
        a = Tensor([0.5, 1.0, 2.0])
        assert np.allclose(a.exp().log().data, a.data)

    def test_sigmoid_range(self):
        values = Tensor(np.linspace(-100, 100, 11)).sigmoid().data
        assert np.all(values >= 0.0) and np.all(values <= 1.0)

    def test_relu_zeroes_negatives(self):
        assert np.allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_leaky_relu_slope(self):
        assert np.allclose(Tensor([-2.0, 2.0]).leaky_relu(0.1).data, [-0.2, 2.0])

    def test_abs_and_sqrt(self):
        assert np.allclose(Tensor([-3.0, 4.0]).abs().data, [3.0, 4.0])
        assert np.allclose(Tensor([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_clip_bounds(self):
        clipped = Tensor([-5.0, 0.5, 5.0]).clip(-1.0, 1.0)
        assert np.allclose(clipped.data, [-1.0, 0.5, 1.0])

    def test_tanh_matches_numpy(self):
        values = np.linspace(-2, 2, 7)
        assert np.allclose(Tensor(values).tanh().data, np.tanh(values))


class TestReductionsAndShapes:
    def test_sum_axis_and_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.sum().item() == pytest.approx(15.0)
        assert a.sum(axis=0).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_and_var(self):
        a = Tensor(np.arange(8.0).reshape(2, 4))
        assert a.mean().item() == pytest.approx(3.5)
        assert np.allclose(a.var(axis=1).data, a.data.var(axis=1))

    def test_max_and_min(self):
        a = Tensor([[1.0, 9.0], [4.0, -2.0]])
        assert a.max().item() == 9.0
        assert np.allclose(a.min(axis=1).data, [1.0, -2.0])

    def test_reshape_and_flatten(self):
        a = Tensor(np.arange(6.0))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).flatten().shape == (6,)

    def test_transpose_and_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)
        assert a.transpose(0, 2, 1).shape == (2, 4, 3)
        assert a.swapaxes(0, 1).shape == (3, 2, 4)
        assert Tensor(np.zeros((2, 3))).T.shape == (3, 2)

    def test_squeeze_unsqueeze(self):
        a = Tensor(np.zeros((2, 1, 3)))
        assert a.squeeze(1).shape == (2, 3)
        assert a.unsqueeze(0).shape == (1, 2, 1, 3)

    def test_broadcast_to_and_repeat(self):
        a = Tensor(np.ones((1, 3)))
        assert a.broadcast_to((4, 3)).shape == (4, 3)
        assert Tensor(np.ones((2, 2))).repeat(3, axis=0).shape == (6, 2)

    def test_getitem_slices_and_fancy(self):
        a = Tensor(np.arange(12.0).reshape(3, 4))
        assert a[1].shape == (4,)
        assert a[:, 1:3].shape == (3, 2)
        assert a[np.array([0, 2])].shape == (2, 4)
        assert a.gather_rows([2, 2, 0]).shape == (3, 4)

    def test_pad(self):
        padded = Tensor(np.ones((2, 2))).pad(((1, 0), (0, 2)))
        assert padded.shape == (3, 4)
        assert padded.data[0].sum() == 0.0


class TestFreeFunctions:
    def test_concat_shapes_and_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        joined = concat([a, b], axis=1)
        assert joined.shape == (2, 5)
        assert joined.data[:, :2].sum() == 4.0

    def test_stack_new_axis(self):
        stacked = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert stacked.shape == (2, 3)

    def test_where_selects(self):
        result = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(result.data, [1.0, 2.0])

    def test_maximum_minimum(self):
        a, b = Tensor([1.0, 5.0]), Tensor([3.0, 2.0])
        assert np.allclose(maximum(a, b).data, [3.0, 5.0])
        assert np.allclose(minimum(a, b).data, [1.0, 2.0])


class TestErrors:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_vector_without_grad_raises(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            tensor.backward()
