"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, concat, no_grad

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_side: int = 4):
    shapes = st.tuples(st.integers(1, max_side), st.integers(1, max_side))
    return shapes.flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_is_commutative(values):
    a, b = Tensor(values), Tensor(values * 0.5 + 1.0)
    assert np.allclose((a + b).data, (b + a).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_exp_log_inverse_on_positive_values(values):
    positive = Tensor(np.abs(values) + 1.0)
    assert np.allclose(positive.exp().log().data, positive.data, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_of_parts_equals_sum_of_whole(values):
    tensor = Tensor(values)
    total = tensor.sum().item()
    by_axis = tensor.sum(axis=0).sum().item()
    assert np.isclose(total, by_axis)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_concat_then_split_roundtrip(values):
    tensor = Tensor(values)
    joined = concat([tensor, tensor], axis=0)
    assert joined.shape[0] == 2 * values.shape[0]
    assert np.allclose(joined.data[: values.shape[0]], values)
    assert np.allclose(joined.data[values.shape[0]:], values)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_linear_gradient_matches_weight(values):
    """d(sum(x @ w)) / dx equals the broadcast row-sums of w."""
    rng = np.random.default_rng(0)
    weight = rng.normal(size=(values.shape[1], 3))
    x = Tensor(values, requires_grad=True)
    (x.matmul(Tensor(weight))).sum().backward()
    expected = np.tile(weight.sum(axis=1), (values.shape[0], 1))
    assert np.allclose(x.grad, expected, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_is_idempotent(values):
    tensor = Tensor(values)
    once = tensor.relu().data
    twice = tensor.relu().relu().data
    assert np.allclose(once, twice)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sigmoid_symmetry(values):
    """sigmoid(-x) == 1 - sigmoid(x)."""
    tensor = Tensor(values)
    assert np.allclose((-tensor).sigmoid().data, 1.0 - tensor.sigmoid().data, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_no_grad_blocks_graph(values):
    x = Tensor(values, requires_grad=True)
    with no_grad():
        out = x * 2.0 + 1.0
    assert not out.requires_grad


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.integers(0, 1))
def test_transpose_involution(values, axis_choice):
    tensor = Tensor(values)
    assert np.allclose(tensor.transpose().transpose().data, values)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_is_sum_over_size(values):
    tensor = Tensor(values)
    assert np.isclose(tensor.mean().item(), tensor.sum().item() / values.size)
