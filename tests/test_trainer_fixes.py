"""Regression tests for the trainer bugfixes: eval-mode restore and early stopping."""

import numpy as np

from repro.core import Trainer
from repro.nn.module import Module, Parameter
from repro.optim import SGD
from repro.tensor import Tensor


class _ConstantModel(Module):
    """Predicts a constant; with a vanishing learning rate the
    validation MAE never improves beyond the trainer's 1e-9 threshold."""

    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.zeros(1), name="weight")

    def forward(self, x):
        return x * 0.0 + self.weight + 1.0


def _loader(num_batches: int = 2):
    rng = np.random.default_rng(0)
    return [
        (rng.normal(size=(2, 3, 4, 1)), np.full((2, 3, 4, 1), 2.0))
        for _ in range(num_batches)
    ]


def _trainer(lr: float = 1e-12) -> Trainer:
    model = _ConstantModel()
    return Trainer(model, SGD(model.parameters(), lr=lr), scaler=None)


class TestEvaluateModeRestore:
    def test_evaluate_restores_eval_mode(self):
        trainer = _trainer()
        trainer.model.eval()
        trainer.evaluate(_loader())
        assert trainer.model.training is False, "evaluate() flipped an eval-mode model back to train"

    def test_evaluate_restores_train_mode(self):
        trainer = _trainer()
        trainer.model.train()
        trainer.evaluate(_loader())
        assert trainer.model.training is True

    def test_evaluate_restores_mode_when_a_batch_raises(self):
        trainer = _trainer()
        trainer.model.train()

        def bad_loader():
            yield (np.ones((2, 3, 4, 1)), np.ones((2, 3, 4, 1)))
            raise RuntimeError("corrupt batch")

        with np.testing.assert_raises(RuntimeError):
            trainer.evaluate(bad_loader())
        assert trainer.model.training is True

    def test_evaluate_empty_loader_restores_mode(self):
        trainer = _trainer()
        trainer.model.eval()
        metrics = trainer.evaluate([])
        assert np.isnan(metrics["mae"])
        assert trainer.model.training is False


class TestEarlyStoppingPatience:
    def test_stops_after_exactly_patience_bad_epochs(self):
        """Epoch 0 improves from +inf; every later epoch is flat, so
        training must run exactly 1 + patience epochs — the seed's off-by-one
        (`bad_epochs > patience`) allowed one epoch more."""
        for patience in (1, 2, 3):
            trainer = _trainer()
            history = trainer.fit(
                _loader(), val_loader=_loader(), epochs=20, patience=patience
            )
            assert history.num_epochs == 1 + patience, f"patience={patience}"

    def test_patience_zero_stops_at_first_bad_epoch(self):
        trainer = _trainer()
        history = trainer.fit(_loader(), val_loader=_loader(), epochs=20, patience=0)
        assert history.num_epochs == 2  # epoch 0 improves, epoch 1 is bad -> stop

    def test_improving_run_is_not_cut_short(self):
        """An improving epoch resets the counter; patience must not trigger."""

        class _ShrinkingModel(_ConstantModel):
            def __init__(self):
                super().__init__()
                self._epoch = 0

            def forward(self, x):
                return x * 0.0 + self.weight + 1.0 + 10.0 / (1.0 + self._epoch)

        model = _ShrinkingModel()
        trainer = Trainer(model, SGD(model.parameters(), lr=1e-12), scaler=None)

        def _bump(epoch, loss, val):
            model._epoch += 1

        history = trainer.fit(
            _loader(), val_loader=_loader(), epochs=5, patience=1, callback=_bump
        )
        assert history.num_epochs == 5
        assert history.val_maes == sorted(history.val_maes, reverse=True)

    def test_no_early_stop_without_patience(self):
        trainer = _trainer()
        history = trainer.fit(_loader(), val_loader=_loader(), epochs=4, patience=None)
        assert history.num_epochs == 4


class TestSchedulerWiring:
    """``Trainer.fit(..., scheduler=)``: one step per epoch, lr history, resume."""

    def test_step_lr_steps_once_per_epoch(self):
        from repro.optim import StepLR

        trainer = _trainer(lr=1.0)
        scheduler = StepLR(trainer.optimizer, step_size=1, gamma=0.5)
        trainer.fit(_loader(), epochs=3, scheduler=scheduler)
        assert scheduler.epoch == 3
        assert trainer.optimizer.lr == 0.125

    def test_history_records_each_epochs_effective_lr(self):
        from repro.optim import StepLR

        trainer = _trainer(lr=1.0)
        scheduler = StepLR(trainer.optimizer, step_size=1, gamma=0.1)
        history = trainer.fit(_loader(), epochs=3, scheduler=scheduler)
        # the recorded lr is the one the epoch *trained* with (pre-step)
        np.testing.assert_allclose(history.lrs, [1.0, 0.1, 0.01])

    def test_lrs_recorded_without_scheduler(self):
        trainer = _trainer(lr=0.5)
        history = trainer.fit(_loader(), epochs=2)
        assert history.lrs == [0.5, 0.5]

    def test_plateau_scheduler_receives_validation_mae(self):
        from repro.optim import ReduceLROnPlateau

        trainer = _trainer(lr=1e-30)  # vanishing lr: val MAE never improves
        scheduler = ReduceLROnPlateau(trainer.optimizer, factor=0.5, patience=0,
                                      min_lr=0.0)
        trainer.fit(_loader(), val_loader=_loader(1), epochs=3, scheduler=scheduler)
        # first epoch sets best; the next two are bad -> two halvings
        assert trainer.optimizer.lr == 0.25e-30

    def test_plateau_without_val_loader_raises(self):
        import pytest

        from repro.optim import ReduceLROnPlateau

        trainer = _trainer()
        scheduler = ReduceLROnPlateau(trainer.optimizer)
        with pytest.raises(ValueError):
            trainer.fit(_loader(), epochs=1, scheduler=scheduler)

    def test_scheduler_round_trips_through_bundle(self, tmp_path):
        from repro.optim import CosineAnnealingLR
        from repro.utils.checkpoint import load_bundle, save_bundle

        trainer = _trainer(lr=1.0)
        scheduler = CosineAnnealingLR(trainer.optimizer, t_max=10)
        trainer.fit(_loader(), epochs=4, scheduler=scheduler)
        path = save_bundle(trainer.model, tmp_path / "bundle", scheduler=scheduler)

        resumed_trainer = _trainer(lr=1.0)
        resumed = CosineAnnealingLR(resumed_trainer.optimizer, t_max=10)
        record = load_bundle(path).scheduler_state
        assert record["type"] == "CosineAnnealingLR"
        resumed.load_state_dict(record["state"])
        assert resumed.epoch == 4
        assert resumed_trainer.optimizer.lr == trainer.optimizer.lr

        # continuing for the remaining epochs matches an uninterrupted run
        resumed_trainer.fit(_loader(), epochs=6, scheduler=resumed)
        fresh_trainer = _trainer(lr=1.0)
        fresh = CosineAnnealingLR(fresh_trainer.optimizer, t_max=10)
        fresh_trainer.fit(_loader(), epochs=10, scheduler=fresh)
        assert resumed_trainer.optimizer.lr == fresh_trainer.optimizer.lr
