"""Tests for the utility helpers (seed, timer, logging, checkpoint) and the experiments CLI."""

import logging
import time

import numpy as np
import pytest

from repro.core import SAGDFN, SAGDFNConfig
from repro.experiments.__main__ import build_parser, main
from repro.nn import Linear, Sequential, ReLU
from repro.tensor import Tensor
from repro.utils import Timer, get_logger, load_checkpoint, save_checkpoint, seed_everything, spawn_rng


class TestSeeding:
    def test_seed_everything_reproducible(self):
        rng_a = seed_everything(123)
        values_a = rng_a.normal(size=5)
        rng_b = seed_everything(123)
        values_b = rng_b.normal(size=5)
        assert np.allclose(values_a, values_b)

    def test_spawn_rng_none_uses_default(self):
        assert np.allclose(spawn_rng(None, default=7).normal(size=3),
                           spawn_rng(7).normal(size=3))

    def test_spawn_rng_different_seeds_differ(self):
        assert not np.allclose(spawn_rng(1).normal(size=3), spawn_rng(2).normal(size=3))


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.count == 2
        assert timer.total >= 0.02
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_mean_of_empty_timer_is_zero(self):
        assert Timer().mean == 0.0


class TestLogging:
    def test_logger_has_single_handler(self):
        first = get_logger("repro.test.logger")
        second = get_logger("repro.test.logger")
        assert first is second
        assert len(first.handlers) == 1
        assert first.level == logging.INFO


class TestCheckpoint:
    def test_roundtrip_restores_parameters_and_metadata(self, tmp_path):
        model = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        path = save_checkpoint(model, tmp_path / "model", metadata={"epoch": 7, "mae": 1.25})
        assert path.suffix == ".npz"

        clone = Sequential(Linear(4, 8, seed=5), ReLU(), Linear(8, 2, seed=6))
        metadata = load_checkpoint(clone, path)
        assert metadata == {"epoch": 7, "mae": 1.25}
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert np.allclose(model(x).data, clone(x).data)

    def test_mismatched_architecture_raises(self, tmp_path):
        path = save_checkpoint(Linear(4, 2, seed=0), tmp_path / "linear")
        # Same parameter names but different shapes -> shape error; a model with
        # different parameter names raises a key error instead.
        with pytest.raises(ValueError):
            load_checkpoint(Linear(5, 2, seed=0), path)
        with pytest.raises(KeyError):
            load_checkpoint(Sequential(Linear(4, 2, seed=0), ReLU()), path)

    def test_sagdfn_checkpoint_roundtrip(self, tmp_path, rng):
        config = SAGDFNConfig(num_nodes=8, input_dim=2, history=4, horizon=3, embedding_dim=4,
                              num_significant=3, top_k=2, hidden_size=8, num_heads=1, ffn_hidden=4)
        model = SAGDFN(config)
        model.refresh_graph(0)
        path = save_checkpoint(model, tmp_path / "sagdfn", metadata={"dataset": "tiny"})
        clone = SAGDFN(config)
        clone._index_set = model.index_set.copy()
        metadata = load_checkpoint(clone, path)
        assert metadata["dataset"] == "tiny"
        batch = Tensor(rng.normal(size=(2, 4, 8, 2)))
        clone.eval()
        model.eval()
        assert np.allclose(model(batch).data, clone(batch).data)


class TestTeacherForcingConfig:
    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SAGDFNConfig(num_nodes=8, num_significant=4, top_k=3, teacher_forcing=1.5)

    def test_teacher_forcing_propagates_to_forecaster(self):
        config = SAGDFNConfig(num_nodes=8, num_significant=4, top_k=3, teacher_forcing=0.7)
        model = SAGDFN(config)
        assert model.forecaster.teacher_forcing == pytest.approx(0.7)


class TestExperimentsCLI:
    def test_list_option(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "table3" in output and "fig4" in output

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_table1_via_cli(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "reduction_vs_gts" in output

    def test_small_table3_via_cli(self, capsys):
        code = main(["table3", "--num-nodes", "10", "--num-steps", "220", "--epochs", "1",
                     "--batch-size", "16"])
        assert code == 0
        output = capsys.readouterr().out
        assert "SAGDFN" in output
